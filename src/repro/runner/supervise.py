"""Worker supervision: deadlines, retries with backoff, and quarantine.

The plain engine path (:func:`repro.runner.pool._execute`) assumes a
perfect world: every unit returns, no worker hangs, no process dies.
Long campaigns break that assumption — a single stuck session or a
worker OOM-killed by the OS used to stall or abort the whole run.  This
module is the engine's fault boundary:

* every unit runs in a *supervised worker process* with a wall-clock
  deadline; a worker that exceeds it is killed and respawned;
* a unit whose worker crashed, hung, or raised is retried with
  exponential backoff under a :class:`RetryBudget`;
* a unit that keeps failing (``max_attempts`` exhausted, or the
  campaign-wide retry budget drained) is **quarantined** — recorded as a
  :class:`UnitFailure` and replaced by a :class:`FailedUnit` placeholder
  instead of aborting the campaign;
* everything that went wrong comes back as a :class:`FailureReport`
  (unit keys, exception tracebacks, retry counts) so partial results
  degrade *loudly*, never silently.

Supervision is opt-in (``EngineOptions.supervision``); without a policy
the engine keeps its zero-overhead inline/pool paths and its exact
historical semantics (first exception propagates).

The module also hosts the chaos hooks (``$REPRO_CHAOS``) used by the
chaos-smoke CI job and the durability tests to inject worker crashes,
poison units, and campaign kills deterministically.
"""

from __future__ import annotations

import hashlib
import os
import sys
import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Tuple

__all__ = [
    "CampaignAborted",
    "ChaosError",
    "FailedUnit",
    "FailureReport",
    "RetryBudget",
    "SupervisionPolicy",
    "UnitFailure",
    "run_supervised",
]


@dataclass(frozen=True)
class RetryBudget:
    """How hard to try before declaring a unit poisoned.

    ``max_attempts`` bounds per-unit attempts (1 = no retry); ``total``
    optionally bounds *retries across the whole campaign* so a sweep of
    correlated failures cannot multiply the runtime unboundedly.  The
    delay before attempt ``n+1`` is ``min(cap, base * 2**(n-1))``
    seconds — exponential backoff, deterministic (no jitter), and
    ``base=0`` disables waiting entirely (the test default).
    """

    max_attempts: int = 3
    total: Optional[int] = None
    backoff_base: float = 0.5
    backoff_cap: float = 30.0

    def delay(self, attempt: int) -> float:
        """Seconds to wait before retrying after failed attempt ``attempt``."""
        if self.backoff_base <= 0:
            return 0.0
        return min(self.backoff_cap, self.backoff_base * 2 ** (attempt - 1))


@dataclass(frozen=True)
class SupervisionPolicy:
    """Ambient fault-tolerance configuration for the engine.

    ``unit_timeout`` is the per-unit wall-clock deadline in seconds
    (``None`` = no deadline); ``retry`` governs attempts and backoff;
    ``degrade`` chooses what happens when quarantined units remain at
    the end of a batch: ``True`` returns :class:`FailedUnit`
    placeholders in their result slots, ``False`` (the default) raises
    :class:`CampaignAborted` *after* the batch finishes — completed
    units are already persisted, so a resumed campaign never repeats
    them.
    """

    unit_timeout: Optional[float] = None
    retry: RetryBudget = field(default_factory=RetryBudget)
    degrade: bool = False
    poll_interval: float = 0.05


@dataclass
class UnitFailure:
    """One unit's terminal (or transient) failure, fully attributed."""

    index: int                 # position in the batch (plan order)
    label: str                 # human-readable unit description
    key: Optional[str]         # cache fingerprint, when the batch has one
    kind: str                  # "exception" | "crash" | "timeout"
    error: str                 # repr of the exception / crash description
    traceback: str = ""        # worker-side traceback, when one exists
    attempts: int = 1          # attempts consumed so far
    final: bool = False        # True once the unit is quarantined
    worker: Optional[str] = None  # supervised worker lane ("w0", ...)

    def record(self) -> dict:
        """The failure as a flat export record (see ``FAILURE_FIELDS``)."""
        return {
            "unit": self.index,
            "label": self.label,
            "key": self.key,
            "kind": self.kind,
            "error": self.error,
            "attempts": self.attempts,
            "final": self.final,
            "worker": self.worker,
            "traceback": self.traceback,
        }


@dataclass(frozen=True)
class FailedUnit:
    """Placeholder occupying a quarantined unit's result slot.

    Only appears under ``SupervisionPolicy(degrade=True)``; consumers
    that tolerate partial campaigns filter these out (the campaign
    collector does), consumers that cannot will fail loudly on the
    placeholder instead of silently computing over missing sessions.
    """

    failure: UnitFailure


class FailureReport:
    """Everything that went wrong in a campaign, in plan order.

    Accumulated ambiently (``EngineOptions.failures``) across every
    batch an experiment runs, surfaced by the CLI as a table and by the
    campaign collector as an export.  ``ok`` is ``True`` when the
    campaign lost nothing.
    """

    def __init__(self) -> None:
        self.failures: List[UnitFailure] = []
        self.retries: int = 0

    @property
    def ok(self) -> bool:
        """``True`` when no unit was quarantined."""
        return not self.failures

    def add(self, failure: UnitFailure) -> None:
        """Record one quarantined unit."""
        self.failures.append(failure)

    def records(self) -> List[dict]:
        """Flat export records, one per quarantined unit."""
        return [f.record() for f in self.failures]

    def format(self) -> str:
        """A human-readable failure table for the CLI."""
        if self.ok:
            return "no failures"
        lines = [f"{len(self.failures)} unit(s) quarantined "
                 f"({self.retries} retries spent):"]
        for f in self.failures:
            key = f" key={f.key[:12]}" if f.key else ""
            lines.append(f"  [{f.kind}] {f.label}{key} "
                         f"after {f.attempts} attempt(s): {f.error}")
        return "\n".join(lines)


class CampaignAborted(RuntimeError):
    """A batch finished with quarantined units and ``degrade`` is off.

    Raised *after* the batch completes, with every completed unit
    already persisted to the cache/journal — ``repro experiment
    --resume`` (or simply rerunning against the same cache) re-simulates
    only what is missing.  ``report`` carries the full
    :class:`FailureReport`.
    """

    def __init__(self, report: FailureReport) -> None:
        super().__init__(report.format())
        self.report = report


# -- chaos hooks --------------------------------------------------------------
# Deterministic fault injection for the chaos-smoke CI job and the
# durability tests.  $REPRO_CHAOS selects a mode:
#
#   crash[:rate]      selected units hard-kill their worker (os._exit)
#                     on the first attempt; a marker file in
#                     $REPRO_CHAOS_DIR makes the retry succeed
#   poison[:rate]     selected units raise ChaosError on every attempt,
#                     driving the quarantine path
#   kill-after:<n>    the whole process exits (code 130, like SIGINT)
#                     once n units have completed — simulates a campaign
#                     killed mid-run, for resume testing
#
# Units are selected by hashing their cache key, so the same units
# misbehave on every run and under any --jobs value.

CHAOS_ENV = "REPRO_CHAOS"
CHAOS_DIR_ENV = "REPRO_CHAOS_DIR"

#: Process exit code used by crash-mode chaos (mimics SIGKILL's 128+9).
CHAOS_CRASH_EXIT = 137
#: Process exit code used by kill-after chaos (mimics SIGINT's 128+2).
CHAOS_KILL_EXIT = 130


class ChaosError(RuntimeError):
    """The failure injected by poison-mode chaos."""


def _chaos_selected(key: str, rate: float) -> bool:
    digest = hashlib.sha256(f"chaos:{key}".encode()).digest()
    return digest[0] / 256.0 < rate


def _chaos_dir() -> Optional[str]:
    root = os.environ.get(CHAOS_DIR_ENV)
    if root:
        os.makedirs(root, exist_ok=True)
    return root


def _chaos_marker(root: str, key: str, suffix: str) -> str:
    # shard chaos keys contain "/" ("...:1/4"): flatten so the marker
    # stays a single file directly under $REPRO_CHAOS_DIR
    safe = key.replace(os.sep, "_").replace("/", "_")
    return os.path.join(root, f"{safe}.{suffix}")


def chaos_hook(key: str) -> None:
    """Entry-side chaos: maybe crash or poison the unit ``key``.

    Called by the engine's worker functions before simulating, only when
    ``$REPRO_CHAOS`` is set (the env check lives at the call site so the
    common path costs one dict lookup).
    """
    spec = os.environ.get(CHAOS_ENV, "")
    mode, _, arg = spec.partition(":")
    if mode == "crash":
        rate = float(arg) if arg else 0.5
        root = _chaos_dir()
        if root is None or not _chaos_selected(key, rate):
            return
        marker = _chaos_marker(root, key, "crashed")
        if not os.path.exists(marker):
            with open(marker, "w"):
                pass
            os._exit(CHAOS_CRASH_EXIT)
    elif mode == "poison":
        rate = float(arg) if arg else 0.5
        if _chaos_selected(key, rate):
            raise ChaosError(f"poison unit {key[:12]}")
    elif mode == "kill-after":
        threshold = int(arg)
        root = _chaos_dir()
        if root is not None:
            done = sum(1 for name in os.listdir(root)
                       if name.endswith(".done"))
            if done >= threshold:
                os._exit(CHAOS_KILL_EXIT)


def chaos_mark_done(key: str) -> None:
    """Exit-side chaos bookkeeping: count a completed unit for kill-after."""
    if not os.environ.get(CHAOS_ENV, "").startswith("kill-after"):
        return
    root = _chaos_dir()
    if root is not None:
        with open(_chaos_marker(root, key, "done"), "w"):
            pass


# -- the supervisor -----------------------------------------------------------

def _worker_rss_kb() -> int:
    """Peak RSS of this worker process, in kB (0 where unsupported)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return 0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is kilobytes on Linux, bytes on macOS
    return peak // 1024 if sys.platform == "darwin" else peak


def _beat_emitter(beats, interval: float, counter) -> None:
    """Daemon loop inside a supervised worker: one heartbeat per period.

    Each beat is ``(units_done, rss_kb)`` — liveness plus progress plus
    memory, the whole wire format.  Runs on a daemon thread so a wedged
    unit on the main thread is exactly what *stops* the beats: silence
    is the signal.  (A wedge that holds the GIL stops them too — either
    way the parent sees missed beats.)
    """
    while True:
        time.sleep(interval)
        try:
            beats.put((counter[0], _worker_rss_kb()))
        except Exception:  # parent gone / queue closed: nothing to tell
            return


def _supervised_worker_main(worker: Callable[[Any], Any], inbox, outbox,
                            beats=None, beat_interval: float = 1.0) -> None:
    """Loop of one supervised worker process: run units until told to stop.

    Results and exceptions both travel back through ``outbox``; an
    abrupt death (crash, kill, chaos) is detected by the supervisor
    through the process exit code instead.  When health monitoring is
    on, ``beats`` is a dedicated queue fed by a daemon heartbeat thread
    — separate from ``outbox`` so a torn result pickle can never corrupt
    the liveness channel (or vice versa).
    """
    counter = [0]  # units completed, shared with the heartbeat thread
    if beats is not None:
        threading.Thread(target=_beat_emitter,
                         args=(beats, beat_interval, counter),
                         daemon=True).start()
        try:
            beats.put((0, _worker_rss_kb()))  # birth beat: alive before work
        except Exception:
            pass
    while True:
        message = inbox.get()
        if message is None:
            return
        index, item = message
        try:
            value = worker(item)
        except BaseException as exc:  # noqa: BLE001 — attribute, don't die
            outbox.put((index, "err", f"{type(exc).__name__}: {exc}",
                        traceback.format_exc()))
        else:
            try:
                outbox.put((index, "ok", value))
                counter[0] += 1
            except Exception as exc:  # unpicklable result
                outbox.put((index, "err",
                            f"result not picklable: {exc!r}",
                            traceback.format_exc()))


class _Worker:
    """Supervisor-side handle for one worker process.

    Each worker owns a private result pipe: a process killed mid-write
    can only corrupt *its own* queue, which the supervisor discards when
    it respawns the worker — a shared queue would poison the whole
    batch.
    """

    def __init__(self, context, target,
                 beat_interval: Optional[float] = None) -> None:
        self.inbox = context.SimpleQueue()
        self.outbox = context.SimpleQueue()
        # the heartbeat channel is as private as the result pipe, and
        # only exists when health monitoring asked for it
        self.beats = context.SimpleQueue() if beat_interval is not None else None
        args = (target, self.inbox, self.outbox)
        if self.beats is not None:
            args = args + (self.beats, beat_interval)
        self.process = context.Process(
            target=_supervised_worker_main, args=args, daemon=True)
        self.process.start()
        self.unit: Optional[int] = None      # batch index being run
        self.started_at: float = 0.0

    @property
    def idle(self) -> bool:
        return self.unit is None

    def assign(self, index: int, item: Any) -> None:
        self.unit = index
        self.started_at = time.monotonic()
        self.inbox.put((index, item))

    def dead(self) -> bool:
        return self.process.exitcode is not None

    def kill(self) -> None:
        """Terminate the process, escalating to SIGKILL if it lingers."""
        self.process.terminate()
        self.process.join(timeout=1.0)
        if self.process.is_alive():
            self.process.kill()
            self.process.join(timeout=1.0)

    def stop(self) -> None:
        """Ask the process to exit cleanly; kill it if it does not."""
        if self.dead():
            return
        try:
            self.inbox.put(None)
        except Exception:
            pass
        self.process.join(timeout=1.0)
        if self.process.is_alive():
            self.kill()


def run_supervised(
    worker: Callable[[Any], Any],
    items: Sequence[Any],
    *,
    jobs: int,
    policy: SupervisionPolicy,
    describe: Optional[Callable[[int], str]] = None,
    keys: Optional[Sequence[Optional[str]]] = None,
    on_done: Optional[Callable[[int, Any], None]] = None,
    on_failure: Optional[Callable[[UnitFailure], None]] = None,
    health: Optional[Any] = None,
) -> Tuple[List[Any], List[UnitFailure], int]:
    """Run ``worker`` over ``items`` under supervision.

    Returns ``(results, quarantined, retries)``: results in input order
    with :class:`FailedUnit` placeholders for quarantined units, the
    final :class:`UnitFailure` list (empty on a clean run), and the
    number of retries spent.  ``on_done(index, value)`` fires in
    *completion order* as units finish (the persistence hook);
    ``on_failure(failure)`` fires on every failed attempt, with
    ``failure.final`` set on the quarantining one.

    ``health`` (a :class:`~repro.obs.health.HealthMonitor`, duck-typed
    because the runner never imports ``repro.obs``) turns on the
    heartbeat channel: each worker gains a dedicated beat queue and a
    daemon emitter thread, and the supervisor drains beats and notifies
    the monitor of every assign / completion / failure / death.  Every
    monitor call is report-only — retry and quarantine decisions are
    identical with ``health=None``.

    Unlike the plain pool, every unit — even under ``jobs=1`` — runs in
    a child process, which is what makes crash containment and deadline
    kills possible at all.
    """
    from .pool import _pool_context  # late: avoid import cycle

    total = len(items)
    results: List[Any] = [None] * total
    if total == 0:
        return results, [], 0
    describe = describe or (lambda i: f"unit {i}")
    context = _pool_context()
    budget = policy.retry
    retries_left = budget.total if budget.total is not None else None

    attempts = [0] * total
    done = [False] * total
    quarantined: List[UnitFailure] = []
    retries_spent = 0
    # (eligible_at, index): units waiting for a free worker / backoff
    ready: List[Tuple[float, int]] = [(0.0, i) for i in range(total)]
    beat_interval = (getattr(health, "beat_interval", 1.0)
                     if health is not None else None)
    workers = [_Worker(context, worker, beat_interval)
               for _ in range(max(1, min(jobs, total)))]
    lanes = [f"w{slot}" for slot in range(len(workers))]
    if health is not None:
        for slot, handle in enumerate(workers):
            health.worker_started(lanes[slot], handle.process.pid)

    def _quarantine(failure: UnitFailure) -> None:
        failure.final = True
        quarantined.append(failure)
        results[failure.index] = FailedUnit(failure)
        done[failure.index] = True
        if on_failure is not None:
            on_failure(failure)

    def _failed_attempt(index: int, kind: str, error: str, tb: str,
                        lane: Optional[str] = None) -> None:
        nonlocal retries_spent, retries_left
        attempts[index] += 1
        failure = UnitFailure(
            index=index, label=describe(index),
            key=keys[index] if keys is not None else None,
            kind=kind, error=error, traceback=tb,
            attempts=attempts[index], worker=lane)
        out_of_budget = retries_left is not None and retries_left <= 0
        terminal = attempts[index] >= budget.max_attempts or out_of_budget
        if health is not None:
            # notified before on_failure: the caller's hook may remap
            # failure.index to plan coordinates, the monitor's lanes
            # speak batch-local ones
            failure.final = terminal
            health.unit_failed(failure)
        if terminal:
            _quarantine(failure)
            return
        if on_failure is not None:
            on_failure(failure)
        retries_spent += 1
        if retries_left is not None:
            retries_left -= 1
        eligible = time.monotonic() + budget.delay(attempts[index])
        ready.append((eligible, index))

    def _respawn(slot: int) -> None:
        workers[slot] = _Worker(context, worker, beat_interval)
        if health is not None:
            health.worker_started(lanes[slot], workers[slot].process.pid)

    def _settle(slot: int, kind: str, error: str) -> None:
        """A worker crashed or blew its deadline: respawn, charge the unit."""
        index = workers[slot].unit
        if health is not None:
            health.worker_lost(lanes[slot], workers[slot].process.pid,
                               kind, error, index)
        _respawn(slot)
        if index is not None and not done[index]:
            _failed_attempt(index, kind, error, "", lane=lanes[slot])

    try:
        while not all(done):
            now = time.monotonic()
            progressed = False
            # drain heartbeats (liveness only — never gates scheduling)
            if health is not None:
                for slot, worker_handle in enumerate(workers):
                    beats = worker_handle.beats
                    if beats is None:
                        continue
                    try:
                        while not beats.empty():
                            units_done, rss_kb = beats.get()
                            health.beat(lanes[slot],
                                        worker_handle.process.pid,
                                        units_done, rss_kb)
                    except Exception:
                        pass  # torn beat from a dying worker: drop it
                health.poll()
            # hand eligible units to idle, living workers
            ready.sort()
            for slot, worker_handle in enumerate(workers):
                if not worker_handle.idle or worker_handle.dead():
                    continue
                while ready and done[ready[0][1]]:
                    ready.pop(0)  # settled while waiting (stale entry)
                if not ready or ready[0][0] > now:
                    break
                _, index = ready.pop(0)
                worker_handle.assign(index, items[index])
                if health is not None:
                    health.unit_started(
                        lanes[slot], index, describe(index),
                        keys[index] if keys is not None else None)
                progressed = True
            # drain completions, worker by worker
            for slot, worker_handle in enumerate(workers):
                if worker_handle.unit is None:
                    if worker_handle.dead():
                        if health is not None:
                            health.worker_lost(
                                lanes[slot], worker_handle.process.pid,
                                "crash", "worker died idle", None)
                        _respawn(slot)  # died idle (start failure)
                    continue
                try:
                    while not worker_handle.outbox.empty():
                        index, status, *payload = worker_handle.outbox.get()
                        progressed = True
                        if worker_handle.unit == index:
                            worker_handle.unit = None
                        if done[index]:
                            continue  # stale duplicate
                        if status == "ok":
                            done[index] = True
                            results[index] = payload[0]
                            if health is not None:
                                health.unit_finished(lanes[slot], index)
                            if on_done is not None:
                                on_done(index, payload[0])
                        else:
                            _failed_attempt(index, "exception", *payload,
                                            lane=lanes[slot])
                except Exception as exc:
                    # partial pickle from a dying writer: the pipe is
                    # unusable — treat as a crash of the running unit
                    progressed = True
                    worker_handle.kill()
                    _settle(slot, "crash", f"result pipe corrupted: {exc!r}")
                    continue
                # supervise: abrupt death and blown deadlines
                if worker_handle.unit is None:
                    continue
                if worker_handle.dead():
                    progressed = True
                    code = worker_handle.process.exitcode
                    _settle(slot, "crash",
                            f"worker died with exit code {code}")
                elif (policy.unit_timeout is not None
                      and now - worker_handle.started_at
                      > policy.unit_timeout):
                    progressed = True
                    worker_handle.kill()
                    _settle(slot, "timeout",
                            f"deadline exceeded ({policy.unit_timeout:.1f}s)")
            if not progressed and not all(done):
                time.sleep(policy.poll_interval)
    finally:
        for worker_handle in workers:
            worker_handle.stop()
        if health is not None:
            health.finish()
    return results, quarantined, retries_spent
