"""Campaign reports: render a run ledger into markdown or HTML.

``repro report`` is the post-hoc half of the health plane: the ledger
(:mod:`repro.obs.ledger`) records what a campaign did, this module
replays it into a self-contained document — event timeline, per-worker
utilization, unit latency percentiles (via the same
:mod:`repro.stats` sketches the aggregate exports use), cache-hit /
retry / quarantine tallies, failure attribution and health suspicions —
plus, for distributed campaigns, the fabric's story (queue, shards
published vs prefilled, every re-leased shard with who lost it and who
finished it) and, optionally, the ``BENCH_*.json`` perf trajectory of
the repository the campaign ran in.

Markdown is the primary rendering (readable in a terminal, a gist, or
a CI artifact); :func:`render_html` wraps the same content in one
dependency-free HTML file for browsers.  Everything here is a pure
function of the loaded :class:`~repro.obs.ledger.LedgerView` — the
report never touches the engine, the cache, or the clock beyond
formatting the timestamps the ledger already recorded.
"""

from __future__ import annotations

import html
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from ..stats import HistogramSketch, MomentAccumulator
from .ledger import LedgerView

__all__ = [
    "render_html",
    "render_report",
    "write_report",
]

#: Percentiles reported on the unit-latency table.
_PERCENTILES = (50, 90, 99)


def _fmt_wall(ts: float) -> str:
    return time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(ts))


def _fmt_seconds(value: float) -> str:
    if value >= 100:
        return f"{value:.0f}s"
    if value >= 1:
        return f"{value:.2f}s"
    return f"{value * 1000:.0f}ms"


def _table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> List[str]:
    lines = ["| " + " | ".join(headers) + " |",
             "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
    return lines


def _clip(text: str, width: int = 60) -> str:
    text = str(text).replace("\n", " ").replace("|", "\\|")
    return text if len(text) <= width else text[:width - 3] + "..."


def render_report(view: LedgerView, *, bench_dir=None,
                  title: Optional[str] = None) -> str:
    """The campaign report for one loaded ledger, as markdown.

    ``bench_dir`` (optional) appends the ``BENCH_*.json`` trajectory
    found under that directory (see
    :func:`~repro.obs.bench.load_history`) so a campaign report and the
    repository's perf history travel as one document.
    """
    meta = view.meta
    counts = view.counts()
    span = view.span()
    duration = (span[1] - span[0]) if span else 0.0
    experiment = meta.get("experiment", "?")
    if title is None:
        title = (f"Campaign report — {experiment} "
                 f"(scale={meta.get('scale', '?')}, "
                 f"seed={meta.get('seed', '?')})")

    lines: List[str] = [f"# {title}", ""]
    lines.append(f"- Schema: `{view.schema}`, {len(view.events)} events")
    if span:
        lines.append(f"- Window: {_fmt_wall(span[0])} → {_fmt_wall(span[1])} "
                     f"({_fmt_seconds(duration)})")
    scheduled = view.units_scheduled()
    hits = view.cache_hits()
    lines.append(
        f"- Units: {scheduled} scheduled ({hits} cache hits), "
        f"{counts.get('done', 0)} done, {counts.get('retried', 0)} retried, "
        f"{counts.get('quarantined', 0)} quarantined")
    if counts.get("merged"):
        lines.append(f"- Shards merged: {counts['merged']}")
    if counts.get("suspect"):
        lines.append(f"- Health suspicions: {counts['suspect']}")
    lines.append("")

    # -- timeline ------------------------------------------------------------
    lines += ["## Timeline", ""]
    if span:
        base = span[0]
        kinds: Dict[str, List[float]] = {}
        for event in view.events:
            if "ts" in event:
                kinds.setdefault(event.get("event", "?"), []).append(
                    event["ts"])
        rows = [(kind, len(stamps),
                 f"+{_fmt_seconds(min(stamps) - base)}",
                 f"+{_fmt_seconds(max(stamps) - base)}")
                for kind, stamps in sorted(kinds.items())]
        lines += _table(("event", "count", "first", "last"), rows)
    else:
        lines.append("(empty ledger)")
    lines.append("")

    # -- workers -------------------------------------------------------------
    workers = view.workers()
    if workers:
        lines += ["## Workers", ""]
        rows = []
        for name in sorted(workers):
            lane = workers[name]
            util = (100.0 * lane["busy_s"] / duration) if duration > 0 else 0.0
            rows.append((
                name,
                ",".join(str(p) for p in lane["pids"]) or "?",
                lane["done"], _fmt_seconds(lane["busy_s"]), f"{util:.0f}%",
                lane["retried"], lane["quarantined"],
                f"{lane['rss_kb'] // 1024}MB" if lane["rss_kb"] else "?",
                lane["suspicions"]))
        lines += _table(("worker", "pid(s)", "units", "busy", "util",
                         "retried", "quarantined", "rss", "suspicions"), rows)
        lines.append("")

    # -- distribution --------------------------------------------------------
    dist = view.distribution()
    if dist is not None:
        lines += ["## Distribution", ""]
        lines.append(f"- Queue: `{dist.get('queue', '?')}` "
                     f"(lease TTL {dist.get('ttl', '?')}s, "
                     f"{dist.get('workers', 0)} coordinator-spawned "
                     f"workers)")
        lines.append(f"- Shards: {dist.get('shards', 0)} published "
                     f"({dist.get('cache_hits', 0)} prefilled from the "
                     f"store)")
        lines.append(f"- Re-leases: {dist['re_leases']}, worker exits: "
                     f"{dist['worker_exits']}")
        lines.append("")
        releases = view.releases()
        if releases:
            rows = [(event.get("unit", "?"),
                     _clip(event.get("shard", "") or "", 40),
                     event.get("previous") or "?",
                     event.get("worker", "?"))
                    for event in releases]
            lines += _table(("unit", "shard", "lost by", "re-leased to"),
                            rows)
            lines.append("")

    # -- unit latencies ------------------------------------------------------
    latencies = view.unit_latencies()
    if latencies:
        lines += ["## Unit latencies", ""]
        moments = MomentAccumulator()
        sketch = HistogramSketch()
        moments.add_many(latencies)
        sketch.observe_many(latencies)
        row = [moments.count, _fmt_seconds(moments.mean),
               _fmt_seconds(moments.min), _fmt_seconds(moments.max)]
        headers = ["count", "mean", "min", "max"]
        for q in _PERCENTILES:
            headers.append(f"p{q}")
            value = sketch.percentile(q)
            row.append(_fmt_seconds(value) if value is not None else "?")
        lines += _table(headers, [row])
        lines.append("")

    # -- failures ------------------------------------------------------------
    failures = view.failures()
    if failures:
        lines += ["## Failures", ""]
        rows = [(event.get("event", "?"), event.get("unit", "?"),
                 event.get("worker") or "?", event.get("kind", "?"),
                 event.get("attempts", "?"),
                 _clip(event.get("error", "")))
                for event in failures]
        lines += _table(("outcome", "unit", "worker", "kind", "attempts",
                         "error"), rows)
        lines.append("")

    # -- suspicions ----------------------------------------------------------
    suspicions = view.suspicions()
    if suspicions:
        lines += ["## Health suspicions", ""]
        rows = [(event.get("kind", "?"), event.get("worker", "?"),
                 event.get("unit", ""),
                 _fmt_seconds(event.get("age_s", 0.0)),
                 _clip(event.get("detail", "")))
                for event in suspicions]
        lines += _table(("kind", "worker", "unit", "age", "detail"), rows)
        lines.append("")

    # -- bench history (optional) --------------------------------------------
    if bench_dir is not None:
        from .bench import format_history, load_history

        history = load_history(bench_dir)
        if history:
            lines += ["## Bench history", "", "```",
                      format_history(history), "```", ""]

    return "\n".join(lines).rstrip() + "\n"


def render_html(markdown: str, title: str = "Campaign report") -> str:
    """Wrap a markdown report in one self-contained HTML document.

    A tiny renderer for exactly the subset :func:`render_report` emits —
    headings, pipe tables, bullet lists, fenced code blocks, paragraphs
    — with no external assets, so the file travels whole.
    """
    body: List[str] = []
    in_code = False
    in_table = False
    in_list = False

    def close_blocks() -> None:
        nonlocal in_table, in_list
        if in_table:
            body.append("</table>")
            in_table = False
        if in_list:
            body.append("</ul>")
            in_list = False

    for raw in markdown.splitlines():
        line = raw.rstrip()
        if line.startswith("```"):
            close_blocks()
            body.append("<pre>" if not in_code else "</pre>")
            in_code = not in_code
            continue
        if in_code:
            body.append(html.escape(raw))
            continue
        if not line:
            close_blocks()
            continue
        if line.startswith("#"):
            close_blocks()
            level = len(line) - len(line.lstrip("#"))
            text = html.escape(line.lstrip("#").strip())
            body.append(f"<h{level}>{text}</h{level}>")
        elif line.startswith("|"):
            cells = [html.escape(c.strip().replace("\\|", "|"))
                     for c in line.strip("|").split("|")]
            if all(set(c) <= {"-"} for c in cells):
                continue  # the separator row
            tag = "td" if in_table else "th"
            if not in_table:
                body.append("<table>")
                in_table = True
            body.append("<tr>" + "".join(f"<{tag}>{c}</{tag}>"
                                         for c in cells) + "</tr>")
        elif line.startswith("- "):
            if not in_list:
                close_blocks()
                body.append("<ul>")
                in_list = True
            body.append(f"<li>{html.escape(line[2:])}</li>")
        else:
            close_blocks()
            body.append(f"<p>{html.escape(line)}</p>")
    if in_code:
        body.append("</pre>")
    close_blocks()
    styles = ("body{font-family:sans-serif;max-width:60em;margin:2em auto;"
              "padding:0 1em}table{border-collapse:collapse}"
              "td,th{border:1px solid #999;padding:.25em .6em;"
              "text-align:left}pre{background:#f4f4f4;padding:1em;"
              "overflow-x:auto}")
    return ("<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">"
            f"<title>{html.escape(title)}</title>"
            f"<style>{styles}</style></head>\n<body>\n"
            + "\n".join(body) + "\n</body></html>\n")


def write_report(view: LedgerView, path, *, bench_dir=None,
                 title: Optional[str] = None) -> str:
    """Render ``view`` to ``path`` — HTML when the suffix says so
    (``.html``/``.htm``), markdown otherwise.  Returns the rendered
    markdown either way (the CLI prints it when no path is given)."""
    markdown = render_report(view, bench_dir=bench_dir, title=title)
    target = Path(path)
    if target.suffix.lower() in (".html", ".htm"):
        first = markdown.splitlines()[0].lstrip("# ").strip()
        target.write_text(render_html(markdown, title=first),
                          encoding="utf-8")
    else:
        target.write_text(markdown, encoding="utf-8")
    return markdown
