"""The run ledger: an append-only event log of campaign lifecycle.

The resume journal (:mod:`repro.runner.journal`) answers one question —
*which units are settled?* — and deliberately forgets everything else.
The ledger keeps what the journal drops: **when** each lifecycle
transition happened and **which worker** it happened on, as a flat
JSONL event stream that post-hoc tooling (``repro report``) can replay
into timelines, per-worker utilization, and latency distributions.

One file per campaign, written alongside the journal
(``<cache_root>/ledger/<experiment>-<fingerprint>.jsonl``).  The first
line is a schema-versioned header; every later line is one event::

    {"schema": "repro-ledger/v1", "meta": {"experiment": "fig2", ...}}
    {"seq": 0, "ts": 1754554000.21, "event": "campaign-started", ...}
    {"seq": 1, "ts": 1754554000.23, "event": "scheduled", "units": 4, ...}
    {"seq": 2, "ts": 1754554000.30, "event": "started", "unit": 0,
     "worker": "w0", ...}

Event kinds: ``campaign-started`` / ``campaign-finished`` (CLI scope),
``scheduled`` (one per engine batch, after cache lookup), ``started`` /
``done`` / ``retried`` / ``quarantined`` (per supervised unit, worker
attributed), ``heartbeat-summary`` (periodic worker-lane snapshot),
``suspect`` (health suspicion: missed-beat, straggler, worker-lost) and
``merged`` (one per shard folded into the streaming reduction).  A
distributed campaign adds ``dist-published`` (the batch hit the work
queue), ``re-leased`` (an expired holder's shard moved to a live
worker — the fabric's fault-tolerance record), and ``worker-exit``
(a coordinator-spawned local worker left, normally or not).

The ledger obeys the obs invariant — it *watches*: nothing reads it
back during a run, it never enters a cache fingerprint, and the loader
(:func:`load_ledger`) tolerates the torn final line a killed writer
leaves behind, exactly like the journal's.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

from ..runner.journal import campaign_fingerprint

__all__ = [
    "LEDGER_SCHEMA",
    "LedgerView",
    "RunLedger",
    "ledger_path",
    "load_ledger",
]

#: Schema identifier stamped into (and required of) every ledger file.
LEDGER_SCHEMA = "repro-ledger/v1"

#: Subdirectory of a cache root where run ledgers live (sibling of
#: the resume journal's ``journal/``).
LEDGER_DIRNAME = "ledger"


def ledger_path(cache_root, experiment: str, scale: str, seed: int) -> Path:
    """Where the ledger for one (experiment, scale, seed) campaign lives.

    Named by the same :func:`~repro.runner.journal.campaign_fingerprint`
    as the resume journal, so the two files for one campaign sit side by
    side under the cache root.
    """
    fp = campaign_fingerprint(experiment, scale, seed)
    return Path(cache_root) / LEDGER_DIRNAME / f"{experiment}-{fp}.jsonl"


class RunLedger:
    """Append-only JSONL event log for one campaign.

    Events are sequence-numbered and wall-clock timestamped at append
    time; each is flushed immediately, so a killed campaign keeps every
    event up to the kill.  ``clock`` is injectable for deterministic
    tests.
    """

    def __init__(self, path, *, meta: Optional[dict] = None,
                 fresh: bool = False,
                 clock: Callable[[], float] = time.time) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.clock = clock
        self._seq = 0
        if fresh and self.path.exists():
            self.path.unlink()
        existed = self.path.exists() and self.path.stat().st_size > 0
        if existed:
            # resumed campaign: keep appending, continue the sequence
            view = load_ledger(self.path)
            self._seq = (view.events[-1]["seq"] + 1) if view.events else 0
        self._file = open(self.path, "a", encoding="utf-8")
        # terminate a torn final line (same defence as the journal's)
        if self._file.tell() > 0:
            with open(self.path, "rb") as f:
                f.seek(-1, os.SEEK_END)
                if f.read(1) != b"\n":
                    self._file.write("\n")
                    self._file.flush()
        if not existed:
            self._append({"schema": LEDGER_SCHEMA, "meta": dict(meta or {})})

    @classmethod
    def for_campaign(cls, cache_root, experiment: str, scale: str,
                     seed: int, *, fresh: bool = False) -> "RunLedger":
        """The ledger for one campaign under a cache root; ``fresh=True``
        discards any previous event log."""
        meta = {"experiment": experiment, "scale": scale, "seed": seed}
        return cls(ledger_path(cache_root, experiment, scale, seed),
                   meta=meta, fresh=fresh)

    def _append(self, record: dict) -> None:
        self._file.write(json.dumps(record) + "\n")
        self._file.flush()

    def event(self, event: str, **fields: Any) -> None:
        """Append one lifecycle event (``None``-valued fields dropped)."""
        record: Dict[str, Any] = {"seq": self._seq,
                                  "ts": round(self.clock(), 3),
                                  "event": event}
        record.update((k, v) for k, v in fields.items() if v is not None)
        self._seq += 1
        self._append(record)

    def close(self) -> None:
        """Flush and close the underlying file (idempotent)."""
        if not self._file.closed:
            self._file.close()

    def __enter__(self) -> "RunLedger":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class LedgerView:
    """A loaded ledger: header metadata plus the event list, with the
    derived views ``repro report`` renders (counts, per-worker activity,
    unit latencies, failures)."""

    def __init__(self, schema: str, meta: dict, events: List[dict]) -> None:
        self.schema = schema
        self.meta = meta
        self.events = events

    def counts(self) -> Dict[str, int]:
        """Events per kind, e.g. ``{"started": 13, "done": 12, ...}``."""
        counts: Dict[str, int] = {}
        for event in self.events:
            kind = event.get("event", "?")
            counts[kind] = counts.get(kind, 0) + 1
        return counts

    def span(self) -> Optional[tuple]:
        """``(first_ts, last_ts)`` over all events, or ``None`` if empty."""
        stamps = [e["ts"] for e in self.events if "ts" in e]
        if not stamps:
            return None
        return min(stamps), max(stamps)

    def units_scheduled(self) -> int:
        """Units scheduled across every engine batch (cache hits included)."""
        return sum(e.get("units", 0) for e in self.events
                   if e.get("event") == "scheduled")

    def cache_hits(self) -> int:
        """Cache hits across every engine batch."""
        return sum(e.get("cache_hits", 0) for e in self.events
                   if e.get("event") == "scheduled")

    def unit_latencies(self) -> List[float]:
        """Per-unit wall latencies from ``done`` events, arrival order."""
        return [e["latency_s"] for e in self.events
                if e.get("event") == "done" and "latency_s" in e]

    def failures(self) -> List[dict]:
        """Every ``retried`` / ``quarantined`` event, ledger order."""
        return [e for e in self.events
                if e.get("event") in ("retried", "quarantined")]

    def suspicions(self) -> List[dict]:
        """Every health ``suspect`` event, ledger order."""
        return [e for e in self.events if e.get("event") == "suspect"]

    def releases(self) -> List[dict]:
        """Every ``re-leased`` event (an expired lease stolen by a live
        worker), ledger order — who lost each shard and who finished it."""
        return [e for e in self.events if e.get("event") == "re-leased"]

    def distribution(self) -> Optional[dict]:
        """The distributed-fabric summary, or ``None`` for local runs.

        Folds the ``dist-published`` event(s) — queue, TTL, spawned
        worker count, shards published vs prefilled — with the
        re-lease and worker-exit tallies the report's Distribution
        section renders.
        """
        published = [e for e in self.events
                     if e.get("event") == "dist-published"]
        if not published:
            return None
        info = {k: v for k, v in published[0].items()
                if k not in ("seq", "ts", "event")}
        info["batches"] = len(published)
        info["shards"] = sum(e.get("shards", 0) for e in published)
        info["cache_hits"] = sum(e.get("cache_hits", 0) for e in published)
        info["re_leases"] = len(self.releases())
        info["worker_exits"] = sum(1 for e in self.events
                                   if e.get("event") == "worker-exit")
        return info

    def workers(self) -> Dict[str, dict]:
        """Per-worker activity folded from unit and summary events.

        One dict per worker lane: units done, busy seconds (sum of done
        latencies), retries and quarantines attributed to it, RSS
        watermark and heartbeat count from the summaries, and the pids
        the lane cycled through (respawns append).
        """
        lanes: Dict[str, dict] = {}

        def lane(worker: str) -> dict:
            return lanes.setdefault(worker, {
                "worker": worker, "pids": [], "done": 0, "busy_s": 0.0,
                "retried": 0, "quarantined": 0, "rss_kb": 0, "beats": 0,
                "suspicions": 0})

        for event in self.events:
            kind = event.get("event")
            worker = event.get("worker")
            if kind == "done" and worker:
                entry = lane(worker)
                entry["done"] += 1
                entry["busy_s"] += event.get("latency_s", 0.0)
            elif kind in ("retried", "quarantined") and worker:
                lane(worker)[kind] += 1
            elif kind == "suspect" and worker:
                lane(worker)["suspicions"] += 1
            elif kind == "heartbeat-summary":
                for snap in event.get("workers", []):
                    entry = lane(snap.get("worker", "?"))
                    pid = snap.get("pid")
                    if pid and pid not in entry["pids"]:
                        entry["pids"].append(pid)
                    entry["rss_kb"] = max(entry["rss_kb"],
                                          snap.get("rss_kb", 0))
                    entry["beats"] = max(entry["beats"],
                                         snap.get("beats", 0))
        return lanes


def load_ledger(path) -> LedgerView:
    """Parse one ledger file into a :class:`LedgerView`.

    Torn-line tolerant (a killed writer's partial final line is skipped)
    and schema-checked: a file whose header names a different schema
    raises ``ValueError`` rather than mis-rendering silently.
    """
    schema = ""
    meta: dict = {}
    events: List[dict] = []
    with open(path, "r", encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue  # torn final line from a killed writer
            if "schema" in record:
                schema = record["schema"]
                meta = record.get("meta", {})
                continue
            if "event" in record:
                events.append(record)
    if schema and schema != LEDGER_SCHEMA:
        raise ValueError(
            f"{path}: ledger schema {schema!r}, expected {LEDGER_SCHEMA!r}")
    return LedgerView(schema or LEDGER_SCHEMA, meta, events)
