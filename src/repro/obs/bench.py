"""The perf-regression tracker: ``BENCH_<gitsha>.json`` write + compare.

Three perf-relevant PRs went by with no recorded trajectory; this module
is the fix.  One schema, two producers, one consumer:

* :class:`BenchWriter` accumulates per-experiment entries (wall time,
  units/sec, cache hits, peak RSS, telemetry span totals) and writes a
  schema-versioned ``BENCH_<gitsha>.json``.  Both ``repro bench`` and
  the ``pytest benchmarks/`` harness (``benchmarks/conftest.py``) write
  through it, so the two feed one comparable trajectory.
* :func:`run_suite` runs a named experiment suite at a chosen scale and
  produces those entries.
* :func:`compare` diffs two bench files and reports the entries whose
  wall time regressed beyond a threshold — the check CI runs across
  consecutive commits.

Bench files measure *this machine, this commit*: wall times are only
comparable between files produced on comparable hardware, which is why
``compare`` is a ratio test with a generous default threshold rather
than an absolute budget.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "BENCH_SCHEMA",
    "BenchWriter",
    "Regression",
    "QUICK_SUITE",
    "compare",
    "format_comparison",
    "format_history",
    "git_sha",
    "load_bench",
    "load_history",
    "peak_rss_kb",
    "run_dist_bench",
    "run_suite",
]

#: Schema identifier stamped into (and required of) every bench file.
BENCH_SCHEMA = "repro-bench/v1"

#: The fast default suite for ``repro bench``: covers the session
#: engine, analysis pipeline, the analytic model and the fault/retry
#: machinery in a few seconds at small scale.
QUICK_SUITE = ("fig1", "fig2", "model_validation", "ext_fault_recovery")


def git_sha(root: Optional[Path] = None) -> str:
    """The current commit's short sha; ``$REPRO_GIT_SHA`` or ``nogit``
    when the tree is not a git checkout (CI tarballs, sdists)."""
    env = os.environ.get("REPRO_GIT_SHA")
    if env:
        return env
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=str(root) if root else None,
            capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "nogit"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "nogit"


def peak_rss_kb() -> int:
    """Peak resident set size of this process and its children, in kB."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return 0
    peak = max(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
               resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss)
    # ru_maxrss is kilobytes on Linux, bytes on macOS
    return peak // 1024 if sys.platform == "darwin" else peak


class BenchWriter:
    """Accumulate bench entries and write one ``BENCH_<gitsha>.json``.

    The shared writer behind ``repro bench`` and the pytest benchmark
    harness: one schema, one filename convention, one trajectory.
    """

    def __init__(self, source: str, scale: str, *, jobs: int = 1,
                 seed: int = 0, sha: Optional[str] = None) -> None:
        self.source = source
        self.scale = scale
        self.jobs = jobs
        self.seed = seed
        self.sha = sha or git_sha()
        self.entries: Dict[str, Dict] = {}

    def add(self, name: str, wall_s: float, **metrics) -> None:
        """Record one entry; re-adding a name overwrites it."""
        entry = {"wall_s": round(wall_s, 6)}
        entry.update(metrics)
        self.entries[name] = entry

    def payload(self) -> Dict:
        """The schema-versioned document :meth:`write` serializes."""
        return {
            "schema": BENCH_SCHEMA,
            "git_sha": self.sha,
            "source": self.source,
            "scale": self.scale,
            "jobs": self.jobs,
            "seed": self.seed,
            "entries": {name: self.entries[name]
                        for name in sorted(self.entries)},
        }

    def write(self, path=None) -> Path:
        """Write the bench file; default name ``BENCH_<gitsha>.json``."""
        target = Path(path) if path is not None \
            else Path(f"BENCH_{self.sha}.json")
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(self.payload(), indent=2) + "\n")
        return target


def load_bench(path) -> Dict:
    """Load and validate a bench file; raises ``ValueError`` on schema
    mismatch so ``--compare`` never silently diffs incompatible files."""
    data = json.loads(Path(path).read_text())
    schema = data.get("schema")
    if schema != BENCH_SCHEMA:
        raise ValueError(
            f"{path}: schema {schema!r} is not {BENCH_SCHEMA!r}"
        )
    if not isinstance(data.get("entries"), dict):
        raise ValueError(f"{path}: missing entries mapping")
    return data


@dataclass(frozen=True)
class Regression:
    """One entry whose wall time regressed beyond the threshold."""

    name: str
    base_wall_s: float
    new_wall_s: float

    @property
    def ratio(self) -> float:
        """Slowdown factor (new over base)."""
        return (self.new_wall_s / self.base_wall_s
                if self.base_wall_s > 0 else float("inf"))


def compare(baseline: Dict, candidate: Dict,
            threshold: float = 0.25) -> List[Regression]:
    """Entries of ``candidate`` slower than ``baseline`` by > ``threshold``.

    Only entries present in both files are compared (suite membership
    may legitimately change between commits); the comparison key is
    wall time, the one number every producer records.
    """
    regressions = []
    base_entries = baseline["entries"]
    for name, entry in sorted(candidate["entries"].items()):
        base = base_entries.get(name)
        if base is None:
            continue
        base_wall = float(base["wall_s"])
        new_wall = float(entry["wall_s"])
        if base_wall > 0 and new_wall > base_wall * (1.0 + threshold):
            regressions.append(Regression(name, base_wall, new_wall))
    return regressions


def format_comparison(baseline: Dict, candidate: Dict,
                      regressions: Sequence[Regression],
                      threshold: float) -> str:
    """Human-readable diff table for ``repro bench --compare``."""
    flagged = {r.name for r in regressions}
    lines = [
        f"bench compare — base {baseline.get('git_sha', '?')} "
        f"vs new {candidate.get('git_sha', '?')} "
        f"(threshold +{threshold:.0%})",
    ]
    names = sorted(set(baseline["entries"]) | set(candidate["entries"]))
    width = max(len(n) for n in names) if names else 4
    for name in names:
        base = baseline["entries"].get(name)
        new = candidate["entries"].get(name)
        if base is None or new is None:
            status = "only in " + ("new" if base is None else "base")
            lines.append(f"  {name:<{width}}  {status}")
            continue
        base_wall = float(base["wall_s"])
        new_wall = float(new["wall_s"])
        delta = (new_wall / base_wall - 1.0) if base_wall > 0 else float("inf")
        marker = "REGRESSION" if name in flagged else "ok"
        lines.append(
            f"  {name:<{width}}  {base_wall:8.3f}s -> {new_wall:8.3f}s  "
            f"{delta:+7.1%}  {marker}"
        )
    lines.append(
        f"{len(regressions)} regression(s) beyond +{threshold:.0%}"
    )
    return "\n".join(lines)


def _commit_order(directory: Path) -> Dict[str, int]:
    """Map abbreviated shas to first-parent commit positions, oldest = 0.

    Empty when the directory is not a git checkout — callers then fall
    back to file-mtime ordering.
    """
    try:
        out = subprocess.run(
            ["git", "rev-list", "--first-parent", "--abbrev-commit", "HEAD"],
            cwd=str(directory), capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return {}
    if out.returncode != 0:
        return {}
    shas = out.stdout.split()             # newest first
    return {sha: i for i, sha in enumerate(reversed(shas))}


def load_history(directory=".") -> List[Dict]:
    """Every ``BENCH_*.json`` under ``directory``, oldest first.

    The trajectory order is first-parent commit order when git can place
    a file's ``git_sha`` (abbreviation differences are matched by
    prefix); files git cannot place follow, in mtime order.  Unreadable
    or schema-mismatched files are skipped — a history listing should
    survive one corrupt snapshot.
    """
    directory = Path(directory)
    order = _commit_order(directory)

    def position(data: Dict) -> Optional[int]:
        sha = str(data.get("git_sha", ""))
        if not sha:
            return None
        for known, idx in order.items():
            if known.startswith(sha) or sha.startswith(known):
                return idx
        return None

    known, unknown = [], []
    for path in sorted(directory.glob("BENCH_*.json")):
        try:
            data = load_bench(path)
        except (OSError, ValueError):
            continue
        pos = position(data)
        if pos is not None:
            known.append((pos, data))
        else:
            unknown.append((path.stat().st_mtime, data))
    known.sort(key=lambda item: item[0])
    unknown.sort(key=lambda item: item[0])
    return [data for _, data in known] + [data for _, data in unknown]


def format_history(payloads: Sequence[Dict]) -> str:
    """Per-benchmark trajectory table for ``repro bench --history``.

    One row per benchmark entry, one wall-time column per snapshot
    (oldest to newest), and a closing speedup column — first over last,
    so bigger is faster.  Wall times are only comparable when the
    snapshots came from comparable hardware; the table reports what was
    committed, it does not normalize.
    """
    shas = [str(p.get("git_sha", "?")) for p in payloads]
    names = sorted({name for p in payloads for name in p["entries"]})
    lines = [f"bench history — {len(payloads)} snapshot(s), oldest → newest"]
    if not names:
        lines.append("  (no entries)")
        return "\n".join(lines)
    width = max(len(n) for n in names)
    col = max([9] + [len(s) + 1 for s in shas])
    header = "  " + " " * width + "".join(f"  {s:>{col}}" for s in shas)
    lines.append(header + "  first→last")
    for name in names:
        walls = [p["entries"].get(name, {}).get("wall_s") for p in payloads]
        cells = "".join(
            f"  {w:>{col - 1}.3f}s" if w is not None else f"  {'—':>{col}}"
            for w in walls
        )
        present = [w for w in walls if w is not None]
        if len(present) >= 2 and present[-1] > 0:
            ratio = present[0] / present[-1]
            trend = (f"{ratio:.2f}x faster" if ratio >= 1.0
                     else f"{1 / ratio:.2f}x slower")
        else:
            trend = "—"
        lines.append(f"  {name:<{width}}{cells}  {trend}")
    return "\n".join(lines)


def run_dist_bench(scale_name: str = "small", *, seed: int = 0,
                   sessions: int = 6000, shard_size: int = 250,
                   workers: Sequence[int] = (1, 4)) -> Dict:
    """One ``dist_campaign`` bench entry: the distributed fabric's
    worker-count scaling on this machine.

    Runs the same sharded ``model_validation`` campaign through the
    lease-based queue once per worker count, each run over a throwaway
    queue and store so every shard actually simulates (a warm store
    would measure the prefill path, not the fabric).  The entry's
    headline ``wall_s`` is the *largest* fleet's wall time — the
    configuration the fabric exists for — with per-fleet wall times and
    the first-to-last ``speedup`` alongside, which is what the
    PERFORMANCE.md scaling table and ``--history`` track.
    """
    import shutil
    import tempfile

    from ..experiments import REGISTRY, SCALES
    from ..runner import DistPolicy, ResultCache, RunStats, Sharding

    spec = REGISTRY["model_validation"]
    scale = SCALES[scale_name]
    entry: Dict = {"workers": list(workers), "sessions": sessions,
                   "shard_size": shard_size}
    for count in workers:
        tmp = tempfile.mkdtemp(prefix="repro-dist-bench-")
        try:
            cache = ResultCache(Path(tmp) / "cache")
            policy = DistPolicy(queue=str(Path(tmp) / "queue"),
                                workers=max(1, count))
            stats = RunStats()
            started = time.perf_counter()
            spec.run(scale, seed=seed, cache=cache, stats=stats,
                     sharding=Sharding(sessions=sessions,
                                       shard_size=shard_size),
                     dist=policy)
            wall = time.perf_counter() - started
            entry[f"workers{count}_wall_s"] = round(wall, 6)
            entry[f"workers{count}_units_per_sec"] = (
                round(stats.sessions / wall, 3) if wall > 0 else 0.0)
        finally:
            shutil.rmtree(tmp, ignore_errors=True)
    first = entry[f"workers{workers[0]}_wall_s"]
    last = entry[f"workers{workers[-1]}_wall_s"]
    entry["wall_s"] = last
    entry["speedup"] = round(first / last, 3) if last > 0 else 0.0
    return entry


def run_suite(names: Sequence[str], scale_name: str = "small", *,
              seed: int = 0, jobs: int = 1,
              cache=None) -> Tuple[Dict[str, Dict], List[str]]:
    """Run each named experiment once and measure it.

    Returns ``(entries, reports)``: per-experiment bench entries (wall
    time, units/sec, cache hits/misses, peak RSS, telemetry span
    totals) and the rendered experiment reports.  Experiments run under
    a live telemetry recorder — recording never changes results, and
    the span totals become part of the trajectory.
    """
    from ..experiments import REGISTRY, SCALES
    from ..runner import RunStats
    from ..telemetry import recording

    scale = SCALES[scale_name]
    entries: Dict[str, Dict] = {}
    reports: List[str] = []
    for name in names:
        spec = REGISTRY[name]
        stats = RunStats()
        started = time.perf_counter()
        with recording() as rec:
            result = spec.run(scale, seed=seed, jobs=jobs, cache=cache,
                              stats=stats)
        wall = time.perf_counter() - started
        reports.append(result.report())
        root_span_s = sum(s.duration for s in rec.spans
                          if "/" not in s.path)
        entries[name] = {
            "wall_s": round(wall, 6),
            "units": stats.sessions,
            "units_per_sec": round(stats.sessions / wall, 3) if wall > 0
            else 0.0,
            "cache_hits": stats.cache_hits,
            "cache_misses": stats.cache_misses,
            "peak_rss_kb": peak_rss_kb(),
            "spans": len(rec.spans),
            "span_total_s": round(root_span_s, 6),
        }
    return entries, reports
