"""Metric time-series extraction from completed sessions.

Where :mod:`repro.obs.flows` summarizes a session into flow records,
this module keeps the *time axis*: the quantities the paper plots
against time (cumulative download amount, advertised receive window,
player-buffer occupancy) plus the operational series a production
deployment would scrape (per-second throughput, link utilisation,
server congestion window).

Every sample is a plain dict ``{"metric", "session", "t", "value"}``
(plus ``"conn"`` for per-connection series) with ``t`` in *simulated*
seconds — never wall clock — so a metrics export is a pure function of
the session and byte-identical for any worker count.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..analysis.flowtable import build_download_trace
from ..simnet.monitor import TimeSeries
from ..streaming.session import SessionResult

__all__ = [
    "METRIC_FIELDS",
    "metric_samples",
]

#: Column order for tabular (CSV) metric exports.
METRIC_FIELDS = ("metric", "session", "conn", "t", "value")

#: Bin width, in simulated seconds, for the derived throughput and
#: utilisation series.
RATE_BIN_S = 1.0


def _series_samples(series: TimeSeries, metric: str, session_id: str,
                    conn: Optional[int] = None) -> List[Dict]:
    samples = []
    for t, value in series:
        sample = {"metric": metric, "session": session_id}
        if conn is not None:
            sample["conn"] = conn
        sample["t"] = t
        sample["value"] = value
        samples.append(sample)
    return samples


def metric_samples(result: SessionResult, session_id: str) -> List[Dict]:
    """Every time-series of one session, flattened to sample dicts.

    Emitted metrics, in order:

    * ``download_bytes`` — cumulative unique payload bytes (Fig. 2(a));
    * ``throughput_bps`` — per-second download rate derived from it;
    * ``link_utilization`` — the same rate over the profile's downlink;
    * ``recv_window_bytes`` — the client's advertised window (Fig. 2(b));
    * ``player_buffer_s`` — buffer occupancy, when the session ran with
      ``config.probe_period`` set (Table 2's probe);
    * ``cwnd_bytes`` — server congestion window per connection, when the
      session ran with ``config.trace_cwnd`` set.
    """
    trace = build_download_trace(result.records, result.client_ip,
                                 result.server_ip)
    samples: List[Dict] = []
    cumulative = trace.cumulative_series()
    samples += _series_samples(cumulative, "download_bytes", session_id)
    rate = cumulative.binned_rate(RATE_BIN_S)
    down_bps = result.config.profile.down_bps
    # Derived series share the rate's (already sorted) time column; the
    # bulk constructor skips the per-append ordering check.
    bits = [bytes_per_s * 8 for bytes_per_s in rate.values]
    throughput = TimeSeries.from_columns("throughput", rate.times, bits)
    utilization = TimeSeries.from_columns(
        "utilization",
        rate.times,
        [b / down_bps for b in bits] if down_bps else [0.0] * len(bits),
    )
    samples += _series_samples(throughput, "throughput_bps", session_id)
    samples += _series_samples(utilization, "link_utilization", session_id)
    samples += _series_samples(trace.window_series, "recv_window_bytes",
                               session_id)
    if result.buffer_series is not None:
        samples += _series_samples(result.buffer_series, "player_buffer_s",
                                   session_id)
    for i, series in enumerate(result.cwnd_traces):
        samples += _series_samples(series, "cwnd_bytes", session_id, conn=i)
    return samples
