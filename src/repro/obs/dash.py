"""`repro dash`: a live, curses-free TTY dashboard for campaigns.

The multi-line sibling of :class:`~repro.obs.progress.ProgressReporter`:
where progress keeps one ``\\r``-rewritten line, the dashboard redraws a
small block — an aggregate header plus one lane per supervised worker —
using nothing but carriage returns and ANSI cursor-up, so it works on
any VT100-ish terminal without curses::

    fig2  units 7/13  2.1/s  eta 3s  cache 0  retries 1
      w0 pid 4242   beat 0.2s   3 units  2.2/s  rss 64MB  model_validation:Long #8 (1.2s)
      w1 pid 4244   beat 3.1s!  2 units  1.9/s  rss 63MB  model_validation:Long #9 (4.8s) STRAGGLER

A ``!`` after the beat age marks a missed-beat suspicion; straggler and
worker-lost flags render on the lane.  When stderr is not a TTY the
dashboard degrades to the progress reporter's discipline — one plain
summary line every ``plain_interval`` seconds, plus an immediate line
per suspicion — so CI logs stay readable.

Worker lanes arrive through the engine observer hook: the
:class:`~repro.obs.health.HealthMonitor` forwards ``worker_beat`` /
``worker_suspect`` / ``unit_started`` callbacks, so the dashboard needs
health monitoring on (the ``repro dash`` command wires both).  Like
every observer it only watches — closing it mid-campaign changes
nothing but the terminal.
"""

from __future__ import annotations

import sys
import time
from typing import Any, Dict, Optional, Sequence, TextIO

from ..runner.pool import NullRunObserver

__all__ = [
    "DashboardReporter",
]


class DashboardReporter(NullRunObserver):
    """Render engine + worker-health state as a live multi-line block."""

    enabled = True

    def __init__(self, stream: Optional[TextIO] = None,
                 label: str = "units",
                 min_interval: float = 0.2,
                 plain_interval: float = 5.0) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.label = label
        self.min_interval = min_interval
        self.plain_interval = plain_interval
        self.total = 0
        self.done = 0
        self.cache_hits = 0
        self.retries = 0
        self.failed = 0
        self.lanes: Dict[str, Any] = {}     # worker -> live WorkerLane
        self.flags: Dict[str, str] = {}     # worker -> latest suspicion kind
        self._units: Dict[str, str] = {}    # worker -> current unit label
        self._started = time.monotonic()
        self._last_render = 0.0
        self._drawn = 0                     # lines the TTY block occupies
        self._closed = False
        try:
            self._tty = bool(self.stream.isatty())
        except (AttributeError, ValueError, OSError):
            self._tty = False

    # -- observer callbacks --------------------------------------------------

    def batch_started(self, units: int, cache_hits: int) -> None:
        self.total += units
        self.done += cache_hits
        self.cache_hits += cache_hits
        self._render(force=True)

    def unit_started(self, index: int, label: str, worker: str) -> None:
        self._units[worker] = label
        self._render()

    def unit_finished(self, value: Any) -> None:
        self.done += 1
        self._render()

    def unit_failed(self, failure: Any) -> None:
        if failure.final:
            self.failed += 1
            self.done += 1
        else:
            self.retries += 1
        if not self._tty:
            where = f" on {failure.worker}" if failure.worker else ""
            outcome = "quarantined" if failure.final else "retrying"
            self._plain_line(f"{outcome}: {failure.label}{where} "
                             f"[{failure.kind}] {failure.error}")
        self._render(force=True)

    def worker_beat(self, lane: Any) -> None:
        self.lanes[lane.worker] = lane
        self.flags.pop(lane.worker, None)  # a beat clears the flag
        self._render()

    def worker_suspect(self, suspicion: Any) -> None:
        self.flags[suspicion.worker] = suspicion.kind
        if not self._tty:
            self._plain_line(
                f"suspect [{suspicion.kind}] {suspicion.worker} "
                f"pid {suspicion.pid}: {suspicion.detail}")
        self._render(force=True)

    def batch_finished(self, values: Sequence[Any]) -> None:
        self._render(force=True)

    # -- rendering -----------------------------------------------------------

    def _header(self) -> str:
        elapsed = max(time.monotonic() - self._started, 1e-9)
        rate = self.done / elapsed
        parts = [f"{self.label} {self.done}/{self.total}", f"{rate:.1f}/s"]
        remaining = self.total - self.done
        if remaining > 0 and rate > 0:
            parts.append(f"eta {remaining / rate:.0f}s")
        parts.append(f"cache {self.cache_hits}")
        if self.retries:
            parts.append(f"retries {self.retries}")
        if self.failed:
            parts.append(f"failed {self.failed}")
        return "  ".join(parts)

    def _lane_line(self, worker: str) -> str:
        lane = self.lanes.get(worker)
        flag = self.flags.get(worker)
        now = time.monotonic()
        if lane is None:
            line = f"  {worker} (no beats yet)"
        else:
            age = lane.beat_age(now)
            mark = "!" if lane.missing or flag == "missed-beat" else " "
            rss = f"{lane.rss_kb // 1024}MB" if lane.rss_kb else "?"
            line = (f"  {worker} pid {lane.pid}  beat {age:4.1f}s{mark} "
                    f"{lane.units_done:3d} units  {lane.rate:4.1f}/s  "
                    f"rss {rss}")
            unit = self._units.get(worker) or lane.label
            if lane.unit is not None and lane.unit_started_at is not None:
                line += (f"  {unit} "
                         f"({now - lane.unit_started_at:.1f}s)")
            if lane.straggling or flag == "straggler":
                line += "  STRAGGLER"
            if not lane.alive or flag == "worker-lost":
                line += "  LOST"
        if flag and lane is None:
            line += f"  [{flag}]"
        return line

    def _block(self) -> list:
        lines = [self._header()]
        for worker in sorted(set(self.lanes) | set(self.flags)
                             | set(self._units)):
            lines.append(self._lane_line(worker))
        return lines

    def _render(self, force: bool = False) -> None:
        if self._closed:
            return
        now = time.monotonic()
        interval = self.min_interval if self._tty else self.plain_interval
        if not force and now - self._last_render < interval:
            return
        self._last_render = now
        if self._tty:
            self._draw_block()
        else:
            self._plain_line(self._header())

    def _draw_block(self) -> None:
        lines = self._block()
        out = []
        if self._drawn:
            out.append(f"\x1b[{self._drawn}A")  # cursor to block top
        for line in lines:
            out.append("\r\x1b[2K" + line + "\n")
        self._drawn = len(lines)
        self.stream.write("".join(out))
        self.stream.flush()

    def _plain_line(self, text: str) -> None:
        self.stream.write(text + "\n")
        self.stream.flush()

    def close(self) -> None:
        """Draw the final state and release the block (idempotent)."""
        if self._closed:
            return
        if self._tty:
            self._draw_block()
        else:
            # the final summary always prints, zero-unit campaigns too
            self._plain_line(self._header())
        self._closed = True

    def __enter__(self) -> "DashboardReporter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
