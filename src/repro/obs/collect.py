"""The campaign collector: engine observer that gathers session results.

Experiments consume :class:`SessionResult` objects and throw them away
once analyzed; the collector is how the observability layer gets hold of
them without touching any experiment.  Installed as the ambient engine
observer (:func:`repro.runner.engine_options`), it receives every
``run_sessions`` batch **in plan order** and assigns each session a
sequential id — batches themselves run sequentially inside an
experiment, so ids, and therefore exports, are identical for any
``--jobs`` value and identical with telemetry recording on or off.

Two retention modes, one contract:

* **Retaining** (default): every session is kept, per-session exports
  (:meth:`~CampaignCollector.write_flows`,
  :meth:`~CampaignCollector.write_metrics`) work, and the aggregate
  :meth:`~CampaignCollector.snapshot` is folded lazily on demand.
* **Streaming** (``CampaignCollector(streaming=True)``): each session is
  folded into the running :class:`CampaignSnapshot` and dropped, so
  memory stays constant no matter how many sessions pass through.  This
  is the mode shard workers use (:mod:`repro.runner.sharding`).

Snapshots **merge**: ``CampaignSnapshot`` is built from the mergeable
primitives in :mod:`repro.stats`, so per-shard snapshots folded in shard
order reproduce the unsharded aggregate — counts, min/max, strategy
tallies and histogram bins bit-for-bit; mean/variance to float-rounding
tolerance (~1e-9 relative; see ``tests/test_sharding.py``).  The
collector recognizes :class:`~repro.runner.sharding.ShardResult` values
in ``batch_finished`` and merges their snapshots automatically, so the
same observer wiring covers per-session and per-shard campaigns.

Results coming back from ``run_tasks`` that are neither sessions nor
shard snapshots (Monte-Carlo batches, cohort aggregates) are ignored, as
are the :class:`~repro.runner.FailedUnit` placeholders a degraded
campaign leaves in quarantined slots — those are collected separately
through the ``unit_failed`` hook and exported by :meth:`write_failures`,
so a partial campaign's exports say exactly what is missing and why.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from ..runner.pool import NullRunObserver
from ..runner.sharding import ShardResult
from ..runner.supervise import UnitFailure
from ..stats import HistogramSketch, MomentAccumulator
from ..streaming.session import SessionResult
from .exporters import export_records
from .flows import FLOW_FIELDS, flow_records
from .metrics import METRIC_FIELDS, metric_samples

__all__ = [
    "AGGREGATE_FIELDS",
    "CampaignCollector",
    "CampaignSnapshot",
    "FAILURE_FIELDS",
]

#: Column order of a failure export (one record per quarantined unit).
FAILURE_FIELDS = (
    "unit",
    "label",
    "key",
    "kind",
    "error",
    "attempts",
    "final",
    "worker",
    "traceback",
)

#: Flow-record fields emitted on the Prometheus rendering of a flow
#: export (numeric/boolean fields only; the rest become labels).
_FLOW_PROM_FIELDS = (
    "packets",
    "bytes",
    "unique_bytes",
    "retransmitted_bytes",
    "retransmission_rate",
    "onoff_blocks",
    "rebuffer_count",
    "stall_time_s",
    "retry_count",
    "fault_events",
)

#: Flow-scoped aggregate metrics: folded once per TCP flow.
_FLOW_MOMENT_FIELDS = (
    "bytes",
    "packets",
    "unique_bytes",
    "retransmitted_bytes",
    "retransmission_rate",
)

#: Session-scoped aggregate metrics: folded once per session (folding
#: them per flow would over-weight multi-flow sessions).
_SESSION_MOMENT_FIELDS = (
    "startup_delay_s",
    "rebuffer_count",
    "rebuffer_ratio",
    "stall_time_s",
    "retry_count",
    "onoff_blocks",
)

#: Metrics that additionally keep a histogram sketch for percentiles.
_SKETCH_FIELDS = (
    "bytes",
    "startup_delay_s",
    "stall_time_s",
)

#: Percentiles reported on aggregate exports.
_PERCENTILES = (50, 90, 99)

#: Column order of an aggregate export (one record per metric).
AGGREGATE_FIELDS = (
    "metric",
    "scope",
    "count",
    "mean",
    "std",
    "min",
    "max",
    "total",
    "p50",
    "p90",
    "p99",
)


@dataclass
class CampaignSnapshot:
    """Mergeable aggregate of a campaign's flow/metric/QoE statistics.

    Constant-size: moments (count/mean/M2/min/max/total) and fixed-bin
    histogram sketches per metric, plus session/flow/strategy tallies —
    never a session, flow record or packet.  Built per shard by a
    streaming :class:`CampaignCollector`, shipped through the pool and
    the shard artifact store, and merged in shard order by the parent.
    """

    sessions: int = 0
    flows: int = 0
    failures: int = 0
    interrupted: int = 0
    failed: int = 0
    strategies: Dict[str, int] = field(default_factory=dict)
    moments: Dict[str, MomentAccumulator] = field(default_factory=dict)
    sketches: Dict[str, HistogramSketch] = field(default_factory=dict)

    # -- folding -------------------------------------------------------------

    def _moment(self, name: str) -> MomentAccumulator:
        acc = self.moments.get(name)
        if acc is None:
            acc = self.moments[name] = MomentAccumulator()
        return acc

    def _observe(self, name: str, value) -> None:
        if value is None:
            return
        value = float(value)
        self._moment(name).add(value)
        if name in _SKETCH_FIELDS:
            sketch = self.sketches.get(name)
            if sketch is None:
                sketch = self.sketches[name] = HistogramSketch()
            sketch.observe(value)

    def fold(self, result: SessionResult) -> None:
        """Fold one session's flow records and QoE fields in."""
        records = flow_records(result, f"s{self.sessions:04d}")
        self.sessions += 1
        self.flows += len(records)
        if result.interrupted:
            self.interrupted += 1
        if result.failed:
            self.failed += 1
        for record in records:
            for name in _FLOW_MOMENT_FIELDS:
                self._observe(name, record[name])
        if records:
            session_fields = records[0]
            strategy = session_fields["strategy"]
            self.strategies[strategy] = self.strategies.get(strategy, 0) + 1
            for name in _SESSION_MOMENT_FIELDS:
                self._observe(name, session_fields[name])

    def fold_moments(self, name: str, moments: MomentAccumulator,
                     sketch: Optional[HistogramSketch] = None,
                     sessions: int = 0) -> None:
        """Fold externally-computed moments in under metric ``name``.

        This is how non-session shard payloads (e.g. the Monte-Carlo
        grid statistics of :class:`~repro.model.AggregateMoments`) join
        the campaign aggregate; they report with scope ``campaign``.
        """
        self.sessions += sessions
        self._moment(name).merge(moments)
        if sketch is not None:
            mine = self.sketches.get(name)
            if mine is None:
                mine = self.sketches[name] = HistogramSketch(
                    bins_per_decade=sketch.bins_per_decade)
            mine.merge(sketch)

    def merge(self, other: "CampaignSnapshot") -> "CampaignSnapshot":
        """Fold another snapshot in (``other`` is left untouched)."""
        self.sessions += other.sessions
        self.flows += other.flows
        self.failures += other.failures
        self.interrupted += other.interrupted
        self.failed += other.failed
        for name, count in other.strategies.items():
            self.strategies[name] = self.strategies.get(name, 0) + count
        for name, acc in other.moments.items():
            self._moment(name).merge(acc)
        for name, sketch in other.sketches.items():
            mine = self.sketches.get(name)
            if mine is None:
                mine = self.sketches[name] = HistogramSketch(
                    bins_per_decade=sketch.bins_per_decade)
            mine.merge(sketch)
        return self

    # -- reporting -----------------------------------------------------------

    def records(self) -> List[Dict]:
        """One flat aggregate record per metric, in schema order.

        Every record carries exactly the :data:`AGGREGATE_FIELDS` keys;
        percentile columns are ``None`` for metrics without a sketch.
        """
        scopes = dict.fromkeys(_FLOW_MOMENT_FIELDS, "flow")
        scopes.update(dict.fromkeys(_SESSION_MOMENT_FIELDS, "session"))
        extras = sorted(set(self.moments) - set(scopes))
        out: List[Dict] = []
        for name in (*_FLOW_MOMENT_FIELDS, *_SESSION_MOMENT_FIELDS,
                     *extras):
            acc = self.moments.get(name)
            if acc is None or acc.count == 0:
                continue
            sketch = self.sketches.get(name)
            record = {
                "metric": name,
                "scope": scopes.get(name, "campaign"),
                "count": acc.count,
                "mean": acc.mean,
                "std": acc.std,
                "min": acc.min,
                "max": acc.max,
                "total": acc.total,
            }
            for q in _PERCENTILES:
                record[f"p{q}"] = (sketch.percentile(q)
                                   if sketch is not None else None)
            out.append(record)
        return out

    def report(self) -> str:
        """Human-readable aggregate summary (one metric per line)."""
        strategies = "  ".join(f"{name}={count}" for name, count
                               in sorted(self.strategies.items()))
        lines = [
            f"campaign aggregate: {self.sessions} sessions, "
            f"{self.flows} flows, {self.failures} failures",
        ]
        if strategies:
            lines.append(f"  strategies: {strategies}")
        for record in self.records():
            line = (f"  {record['metric']:<22} ({record['scope']}) "
                    f"mean={record['mean']:.4g} std={record['std']:.4g} "
                    f"min={record['min']:.4g} max={record['max']:.4g}")
            if record["p50"] is not None:
                line += (f" p50={record['p50']:.4g}"
                         f" p90={record['p90']:.4g}"
                         f" p99={record['p99']:.4g}")
            lines.append(line)
        return "\n".join(lines)


class CampaignCollector(NullRunObserver):
    """Collect a campaign's sessions — retained or streamingly reduced.

    Usage::

        collector = CampaignCollector()
        with engine_options(observer=collector):
            spec.run(scale, seed=0)
        collector.write_flows("flows.jsonl")
        collector.write_metrics("metrics.prom")
        collector.write_aggregate("aggregate.csv")

    With ``streaming=True`` sessions are folded into the aggregate
    snapshot and dropped, so memory stays constant; per-session exports
    (flows/metrics) then raise, because the data they need is gone.

    ``ledger`` (a :class:`~repro.obs.ledger.RunLedger`) records one
    ``merged`` event per shard snapshot folded into the streaming
    reduction — attribution for the reduce side of a sharded campaign.
    Write-only, like everything else here: the collector never reads it.
    """

    enabled = True

    def __init__(self, streaming: bool = False, ledger=None) -> None:
        self.streaming = streaming
        self.ledger = ledger
        self.sessions: List[Tuple[str, SessionResult]] = []
        self.failures: List[UnitFailure] = []
        self._aggregate = CampaignSnapshot()

    def collect(self, result: SessionResult) -> None:
        """Adopt one session result (fold-and-drop when streaming)."""
        if self.streaming:
            self._aggregate.fold(result)
        else:
            self.sessions.append((f"s{len(self.sessions):04d}", result))

    def merge(self, other: Union["CampaignCollector", CampaignSnapshot]) -> None:
        """Fold another collector's (or snapshot's) aggregate in."""
        snapshot = other if isinstance(other, CampaignSnapshot) \
            else other.snapshot()
        self._aggregate.merge(snapshot)

    def snapshot(self) -> CampaignSnapshot:
        """The campaign's aggregate snapshot.

        Streaming mode returns the running snapshot; retaining mode
        folds the kept sessions into a fresh one (idempotent — calling
        twice does not double-count), merged with anything adopted from
        shard results.  Quarantined-unit failures observed directly are
        counted alongside failures merged from shards.
        """
        snap = CampaignSnapshot().merge(self._aggregate)
        for _, result in self.sessions:
            snap.fold(result)
        snap.failures += len(self.failures)
        return snap

    # -- observer callbacks --------------------------------------------------

    def batch_finished(self, values) -> None:
        """Adopt the batch's session results (plan order) and merge any
        shard snapshots, skipping other task values (and
        quarantined-unit placeholders)."""
        for value in values:
            if isinstance(value, SessionResult):
                self.collect(value)
            elif isinstance(value, ShardResult):
                payload = value.value
                if self.ledger is not None:
                    self.ledger.event(
                        "merged", campaign=value.shard.campaign,
                        shard=value.shard.index, of=value.shard.of,
                        units=value.shard.units)
                if isinstance(payload, CampaignSnapshot):
                    self._aggregate.merge(payload)
                elif (hasattr(payload, "moments")
                        and hasattr(payload, "sketch")):
                    # moment-style shard payloads (AggregateMoments)
                    # join the aggregate under their campaign label
                    campaign = value.shard.campaign
                    name = (campaign.split(":", 1)[1]
                            if ":" in campaign else campaign)
                    self._aggregate.fold_moments(
                        name, payload.moments, payload.sketch,
                        sessions=getattr(payload, "sessions", 0))

    def unit_failed(self, failure: UnitFailure) -> None:
        """Adopt a quarantined unit's failure (retried attempts are the
        progress reporter's business, not the campaign record's)."""
        if failure.final:
            self.failures.append(failure)

    # -- exports -------------------------------------------------------------

    def _require_sessions(self, what: str) -> None:
        if self.streaming:
            raise RuntimeError(
                f"{what} need retained sessions; this collector is "
                f"streaming (aggregate-only) — use write_aggregate/"
                f"snapshot instead")

    def flow_records(self) -> List[Dict]:
        """Flow records for every collected session, in session order."""
        self._require_sessions("flow records")
        records: List[Dict] = []
        for session_id, result in self.sessions:
            records.extend(flow_records(result, session_id))
        return records

    def metric_samples(self) -> List[Dict]:
        """Metric samples for every collected session, in session order."""
        self._require_sessions("metric samples")
        samples: List[Dict] = []
        for session_id, result in self.sessions:
            samples.extend(metric_samples(result, session_id))
        return samples

    def write_flows(self, path) -> int:
        """Export flow records in the format implied by ``path``'s suffix.

        The Prometheus rendering flattens each flow record into one
        sample per numeric field (``repro_flow_bytes{...}`` etc.) with
        the 5-tuple and session id as labels.
        """
        from pathlib import Path

        if Path(path).suffix.lower() in (".prom", ".txt"):
            samples = []
            for record in self.flow_records():
                for field_name in _FLOW_PROM_FIELDS:
                    samples.append({
                        "metric": f"flow_{field_name}",
                        "session": record["session"],
                        "src": f"{record['src_ip']}:{record['src_port']}",
                        "dst": f"{record['dst_ip']}:{record['dst_port']}",
                        "value": record[field_name],
                    })
            return export_records(
                samples, path, timestamp_key=None,
                label_keys=("session", "src", "dst"),
            )
        return export_records(self.flow_records(), path, fields=FLOW_FIELDS)

    def write_metrics(self, path) -> int:
        """Export metric samples in the format implied by ``path``'s suffix."""
        return export_records(
            self.metric_samples(), path, fields=METRIC_FIELDS,
            label_keys=("session", "conn"),
        )

    def aggregate_records(self) -> List[Dict]:
        """Aggregate records (works in both retention modes)."""
        return self.snapshot().records()

    def write_aggregate(self, path) -> int:
        """Export the campaign aggregate (one record per metric) in the
        format implied by ``path``'s suffix.

        The Prometheus rendering emits one ``repro_campaign_<metric>``
        gauge per record with the scope as a label and the mean as the
        sample value.
        """
        return export_records(
            self.aggregate_records(), path, fields=AGGREGATE_FIELDS,
            prefix="repro_campaign", value_key="mean",
            timestamp_key=None, label_keys=("scope",),
        )

    def failure_records(self) -> List[Dict]:
        """One flat record per quarantined unit, in failure order."""
        return [failure.record() for failure in self.failures]

    def write_failures(self, path) -> int:
        """Export quarantined-unit failures (keys, errors, tracebacks,
        attempt counts) in the format implied by ``path``'s suffix."""
        return export_records(
            self.failure_records(), path, fields=FAILURE_FIELDS,
            value_key="attempts", metric_key="kind", timestamp_key=None,
            label_keys=("label", "key"),
        )
