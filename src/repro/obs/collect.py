"""The campaign collector: engine observer that gathers session results.

Experiments consume :class:`SessionResult` objects and throw them away
once analyzed; the collector is how the observability layer gets hold of
them without touching any experiment.  Installed as the ambient engine
observer (:func:`repro.runner.engine_options`), it receives every
``run_sessions`` batch **in plan order** and assigns each session a
sequential id — batches themselves run sequentially inside an
experiment, so ids, and therefore exports, are identical for any
``--jobs`` value and identical with telemetry recording on or off.

Results coming back from ``run_tasks`` (Monte-Carlo batches, cohort
aggregates) are not sessions and are ignored, as are the
:class:`~repro.runner.FailedUnit` placeholders a degraded campaign
leaves in quarantined slots — those are collected separately through
the ``unit_failed`` hook and exported by :meth:`write_failures`, so a
partial campaign's exports say exactly what is missing and why.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..runner.pool import NullRunObserver
from ..runner.supervise import UnitFailure
from ..streaming.session import SessionResult
from .exporters import export_records
from .flows import FLOW_FIELDS, flow_records
from .metrics import METRIC_FIELDS, metric_samples

__all__ = [
    "CampaignCollector",
    "FAILURE_FIELDS",
]

#: Column order of a failure export (one record per quarantined unit).
FAILURE_FIELDS = (
    "unit",
    "label",
    "key",
    "kind",
    "error",
    "attempts",
    "final",
    "traceback",
)

#: Flow-record fields emitted on the Prometheus rendering of a flow
#: export (numeric/boolean fields only; the rest become labels).
_FLOW_PROM_FIELDS = (
    "packets",
    "bytes",
    "unique_bytes",
    "retransmitted_bytes",
    "retransmission_rate",
    "onoff_blocks",
    "rebuffer_count",
    "stall_time_s",
    "retry_count",
    "fault_events",
)


class CampaignCollector(NullRunObserver):
    """Collect every session a campaign runs, in deterministic order.

    Usage::

        collector = CampaignCollector()
        with engine_options(observer=collector):
            spec.run(scale, seed=0)
        collector.write_flows("flows.jsonl")
        collector.write_metrics("metrics.prom")
    """

    enabled = True

    def __init__(self) -> None:
        self.sessions: List[Tuple[str, SessionResult]] = []
        self.failures: List[UnitFailure] = []

    def batch_finished(self, values) -> None:
        """Adopt the batch's session results (plan order), skipping
        non-session task values (and quarantined-unit placeholders)."""
        for value in values:
            if isinstance(value, SessionResult):
                self.sessions.append((f"s{len(self.sessions):04d}", value))

    def unit_failed(self, failure: UnitFailure) -> None:
        """Adopt a quarantined unit's failure (retried attempts are the
        progress reporter's business, not the campaign record's)."""
        if failure.final:
            self.failures.append(failure)

    # -- exports -------------------------------------------------------------

    def flow_records(self) -> List[Dict]:
        """Flow records for every collected session, in session order."""
        records: List[Dict] = []
        for session_id, result in self.sessions:
            records.extend(flow_records(result, session_id))
        return records

    def metric_samples(self) -> List[Dict]:
        """Metric samples for every collected session, in session order."""
        samples: List[Dict] = []
        for session_id, result in self.sessions:
            samples.extend(metric_samples(result, session_id))
        return samples

    def write_flows(self, path) -> int:
        """Export flow records in the format implied by ``path``'s suffix.

        The Prometheus rendering flattens each flow record into one
        sample per numeric field (``repro_flow_bytes{...}`` etc.) with
        the 5-tuple and session id as labels.
        """
        from pathlib import Path

        if Path(path).suffix.lower() in (".prom", ".txt"):
            samples = []
            for record in self.flow_records():
                for field in _FLOW_PROM_FIELDS:
                    samples.append({
                        "metric": f"flow_{field}",
                        "session": record["session"],
                        "src": f"{record['src_ip']}:{record['src_port']}",
                        "dst": f"{record['dst_ip']}:{record['dst_port']}",
                        "value": record[field],
                    })
            return export_records(
                samples, path, timestamp_key=None,
                label_keys=("session", "src", "dst"),
            )
        return export_records(self.flow_records(), path, fields=FLOW_FIELDS)

    def write_metrics(self, path) -> int:
        """Export metric samples in the format implied by ``path``'s suffix."""
        return export_records(
            self.metric_samples(), path, fields=METRIC_FIELDS,
            label_keys=("session", "conn"),
        )

    def failure_records(self) -> List[Dict]:
        """One flat record per quarantined unit, in failure order."""
        return [failure.record() for failure in self.failures]

    def write_failures(self, path) -> int:
        """Export quarantined-unit failures (keys, errors, tracebacks,
        attempt counts) in the format implied by ``path``'s suffix."""
        return export_records(
            self.failure_records(), path, fields=FAILURE_FIELDS,
            value_key="attempts", metric_key="kind", timestamp_key=None,
            label_keys=("label", "key"),
        )
