"""The engine health plane: heartbeats, worker lanes, and suspicion.

Supervision (:mod:`repro.runner.supervise`) only learns that a worker
is gone when its process exits or its unit blows the wall-clock
``unit_timeout`` — for a wedged-but-alive worker that can be minutes
away.  This module watches the gap: every supervised worker emits a
periodic heartbeat ``(units_done, rss_kb)`` on a dedicated queue, and a
:class:`HealthMonitor` in the parent folds those beats (plus the
supervisor's assign/settle notifications) into per-worker lanes —
last-beat age, units/s EWMA, RSS watermark, current unit — and raises
*suspicion* long before the timeout would fire:

* **missed-beat** — a live worker silent for more than
  ``miss_after × interval`` seconds (wedged, swapped out, SIGSTOPped);
* **straggler** — an in-flight unit running longer than
  ``straggler_factor × p50`` of the batch's completed unit latencies;
* **worker-lost** — the supervisor settled a crashed/killed/timed-out
  worker (attribution for the retry that follows).

Suspicion is *reported*, never acted on: the monitor forwards it to the
engine observer hook (``worker_suspect``) and the run ledger, and the
supervisor's retry/quarantine behavior is byte-for-byte unchanged
whether monitoring is on or off.  The monitor holds no reference into
the engine — the engine calls it, guarded by ``if health is not None``,
and all of it is default-off (``EngineOptions.health = None``).

Every timestamp the monitor keeps comes from its injectable ``clock``
(monotonic by default), so thresholds, EWMA values and straggler flags
are exactly testable with a synthetic clock and hand-fed beats.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass
from statistics import median
from typing import Any, Callable, Dict, List, Optional

__all__ = [
    "HealthMonitor",
    "HealthPolicy",
    "Suspicion",
    "WorkerLane",
]


def _self_rss_kb() -> int:
    """Peak RSS of *this* process only, in kB (0 where unsupported)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return 0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is kilobytes on Linux, bytes on macOS
    return peak // 1024 if sys.platform == "darwin" else peak


@dataclass(frozen=True)
class HealthPolicy:
    """Thresholds for the health plane (all time units: seconds).

    ``interval`` is the worker heartbeat period; ``miss_after`` is how
    many silent intervals earn a missed-beat suspicion (the default —
    two — matches the detection bound the integration tests assert).
    ``straggler_factor`` and ``min_completed`` govern straggler
    flagging: an in-flight unit is suspect once it runs longer than
    ``straggler_factor × p50`` of completed unit latencies, and no unit
    is flagged before ``min_completed`` latencies exist (a p50 of one
    sample flags everything).  ``ewma_alpha`` weights the newest
    completion when smoothing each lane's units/s rate, and
    ``summary_every`` paces the ledger's ``heartbeat-summary`` events.
    """

    interval: float = 1.0
    miss_after: float = 2.0
    straggler_factor: float = 4.0
    min_completed: int = 3
    ewma_alpha: float = 0.3
    summary_every: float = 5.0


@dataclass
class WorkerLane:
    """Live state of one supervised worker slot (``w0``, ``w1``, ...).

    A lane outlives worker processes: a respawn updates ``pid`` and
    resets liveness, while cumulative counters (units done, busy time,
    retries, RSS watermark) keep accumulating for the slot.
    """

    worker: str
    pid: int = 0
    alive: bool = True
    spawned_at: float = 0.0
    last_beat: Optional[float] = None
    beats: int = 0
    units_done: int = 0
    busy_s: float = 0.0
    retries: int = 0
    rate: float = 0.0            # units/s EWMA over completed units
    rss_kb: int = 0              # worker-reported RSS watermark
    unit: Optional[int] = None   # batch index currently running
    label: str = ""
    key: Optional[str] = None
    unit_started_at: Optional[float] = None
    missing: bool = False        # currently under missed-beat suspicion
    straggling: bool = False     # current unit flagged as a straggler

    def beat_age(self, now: float) -> float:
        """Seconds since the last heartbeat (or spawn, before the first)."""
        anchor = self.last_beat if self.last_beat is not None else self.spawned_at
        return max(0.0, now - anchor)

    def snapshot(self, now: float) -> dict:
        """The lane as a flat dict (ledger heartbeat-summary rendering)."""
        return {
            "worker": self.worker, "pid": self.pid,
            "beat_age_s": round(self.beat_age(now), 3),
            "beats": self.beats, "units_done": self.units_done,
            "rate": round(self.rate, 4), "rss_kb": self.rss_kb,
            "unit": self.unit, "missing": self.missing,
            "straggling": self.straggling,
        }


@dataclass(frozen=True)
class Suspicion:
    """One health flag: a worker or unit the monitor no longer trusts."""

    kind: str                  # "missed-beat" | "straggler" | "worker-lost"
    worker: str                # lane id ("w0", ...)
    pid: int
    unit: Optional[int]        # batch index involved, when one was
    label: str                 # unit description, when one was running
    age_s: float               # beat age / unit elapsed at flag time
    detail: str                # human-readable cause


class HealthMonitor:
    """Fold worker heartbeats and supervisor events into health state.

    The supervisor drives it through the hook methods (``beat``,
    ``worker_started`` ... ``poll``); the monitor fans observations out
    to the engine observer (``worker_beat`` / ``worker_suspect`` /
    ``unit_started`` callbacks) and, when given one, a
    :class:`~repro.obs.ledger.RunLedger`.  It never steers: the
    supervisor consults nothing here.
    """

    def __init__(self, policy: Optional[HealthPolicy] = None, *,
                 ledger: Optional[Any] = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.policy = policy or HealthPolicy()
        self.ledger = ledger
        self.clock = clock
        self.observer: Optional[Any] = None
        self.suspicions: List[Suspicion] = []
        self.units_scheduled = 0
        self.cache_hits = 0
        self.units_done = 0
        self.parent_rss_kb = 0
        self._lanes: Dict[str, WorkerLane] = {}
        self._latencies: List[float] = []
        self._last_summary: Optional[float] = None

    @property
    def beat_interval(self) -> float:
        """The heartbeat period workers should emit at (supervisor reads
        this when spawning worker processes)."""
        return self.policy.interval

    def attach(self, observer: Any) -> None:
        """Forward subsequent observations to an engine observer."""
        self.observer = observer

    # -- engine hooks (called by pool/supervise, never the reverse) ----------

    def batch_started(self, units: int, cache_hits: int) -> None:
        """An engine batch was scheduled (after cache lookup)."""
        self.units_scheduled += units
        self.cache_hits += cache_hits
        if self.ledger is not None:
            self.ledger.event("scheduled", units=units, cache_hits=cache_hits)

    def worker_started(self, worker: str, pid: Optional[int]) -> None:
        """A worker process spawned (or respawned) on lane ``worker``."""
        lane = self._lane(worker)
        lane.pid = pid or 0
        lane.alive = True
        lane.spawned_at = self.clock()
        lane.last_beat = None
        lane.unit = None
        lane.label = ""
        lane.key = None
        lane.unit_started_at = None
        lane.missing = False
        lane.straggling = False

    def worker_lost(self, worker: str, pid: Optional[int], kind: str,
                    error: str, unit: Optional[int]) -> None:
        """The supervisor settled a crashed/killed/timed-out worker."""
        lane = self._lane(worker)
        lane.alive = False
        self._suspect(Suspicion(
            kind="worker-lost", worker=worker, pid=pid or lane.pid,
            unit=unit, label=lane.label if unit is not None else "",
            age_s=lane.beat_age(self.clock()), detail=f"{kind}: {error}"))

    def unit_started(self, worker: str, index: int, label: str,
                     key: Optional[str]) -> None:
        """A unit was handed to a worker."""
        lane = self._lane(worker)
        lane.unit = index
        lane.label = label or f"unit {index}"
        lane.key = key
        lane.unit_started_at = self.clock()
        lane.straggling = False
        if self.ledger is not None:
            self.ledger.event("started", unit=index, label=lane.label,
                              worker=worker, key=key)
        if self.observer is not None and self.observer.enabled:
            self.observer.unit_started(index, lane.label, worker)

    def unit_finished(self, worker: str, index: int) -> None:
        """A unit completed on its worker; credit the lane's rate."""
        lane = self._lane(worker)
        now = self.clock()
        latency = (now - lane.unit_started_at
                   if lane.unit_started_at is not None else 0.0)
        lane.units_done += 1
        lane.busy_s += latency
        self.units_done += 1
        if latency > 0:
            sample = 1.0 / latency
            alpha = self.policy.ewma_alpha
            lane.rate = (sample if lane.rate == 0.0
                         else alpha * sample + (1 - alpha) * lane.rate)
            self._latencies.append(latency)
        if self.ledger is not None:
            self.ledger.event("done", unit=index, worker=worker,
                              key=lane.key, latency_s=round(latency, 6))
        lane.unit = None
        lane.label = ""
        lane.key = None
        lane.unit_started_at = None
        lane.straggling = False

    def unit_failed(self, failure: Any) -> None:
        """A supervised attempt failed (``failure.final`` = quarantined)."""
        worker = getattr(failure, "worker", None)
        if worker is not None:
            lane = self._lane(worker)
            if lane.unit == failure.index:
                lane.unit = None
                lane.label = ""
                lane.key = None
                lane.unit_started_at = None
                lane.straggling = False
            if not failure.final:
                lane.retries += 1
        if self.ledger is not None:
            self.ledger.event(
                "quarantined" if failure.final else "retried",
                unit=failure.index, label=failure.label, worker=worker,
                key=failure.key, kind=failure.kind, error=failure.error,
                attempts=failure.attempts)

    def beat(self, worker: str, pid: Optional[int], units_done: int,
             rss_kb: int) -> None:
        """One heartbeat arrived from a worker process."""
        lane = self._lane(worker)
        lane.last_beat = self.clock()
        lane.beats += 1
        if pid:
            lane.pid = pid
        lane.rss_kb = max(lane.rss_kb, int(rss_kb))
        lane.missing = False  # a beat clears the suspicion
        if self.observer is not None and self.observer.enabled:
            self.observer.worker_beat(lane)

    def poll(self) -> List[Suspicion]:
        """Periodic check: raise fresh suspicions, pace ledger summaries.

        Called once per supervisor loop iteration; callable as often as
        desired — every threshold crossing flags exactly once (a lane
        stays flagged until a beat / a new unit clears it).  Returns the
        suspicions raised by *this* call.
        """
        now = self.clock()
        policy = self.policy
        self.parent_rss_kb = max(self.parent_rss_kb, _self_rss_kb())
        fresh: List[Suspicion] = []
        p50 = (median(self._latencies)
               if len(self._latencies) >= policy.min_completed else None)
        for lane in self._lanes.values():
            if not lane.alive:
                continue
            age = lane.beat_age(now)
            if not lane.missing and age > policy.miss_after * policy.interval:
                lane.missing = True
                fresh.append(Suspicion(
                    kind="missed-beat", worker=lane.worker, pid=lane.pid,
                    unit=lane.unit, label=lane.label, age_s=age,
                    detail=(f"no heartbeat for {age:.2f}s "
                            f"(interval {policy.interval:.2f}s)")))
            if (p50 is not None and not lane.straggling
                    and lane.unit is not None
                    and lane.unit_started_at is not None):
                elapsed = now - lane.unit_started_at
                if elapsed > policy.straggler_factor * p50:
                    lane.straggling = True
                    fresh.append(Suspicion(
                        kind="straggler", worker=lane.worker, pid=lane.pid,
                        unit=lane.unit, label=lane.label, age_s=elapsed,
                        detail=(f"unit running {elapsed:.2f}s > "
                                f"{policy.straggler_factor:g}×p50 "
                                f"({p50:.2f}s)")))
        for suspicion in fresh:
            self._suspect(suspicion)
        if self.ledger is not None and (
                self._last_summary is None
                or now - self._last_summary >= policy.summary_every):
            self._last_summary = now
            self.ledger.event(
                "heartbeat-summary", parent_rss_kb=self.parent_rss_kb,
                workers=[lane.snapshot(now) for lane in self.lanes()])
        return fresh

    def finish(self) -> None:
        """The batch drained: flush one last ledger heartbeat-summary.

        Without it a short campaign's only summary is the one ``poll``
        writes before any beat arrives, and the report never sees the
        workers' RSS watermarks or final beat counts.
        """
        if self.ledger is None:
            return
        now = self.clock()
        self._last_summary = now
        self.ledger.event(
            "heartbeat-summary", parent_rss_kb=self.parent_rss_kb,
            workers=[lane.snapshot(now) for lane in self.lanes()])

    # -- queries -------------------------------------------------------------

    def lanes(self) -> List[WorkerLane]:
        """Every worker lane, ordered by lane id."""
        return [self._lanes[name] for name in sorted(self._lanes)]

    def completed_p50(self) -> Optional[float]:
        """Median completed-unit latency (``None`` below ``min_completed``)."""
        if len(self._latencies) < self.policy.min_completed:
            return None
        return median(self._latencies)

    # -- internals -----------------------------------------------------------

    def _lane(self, worker: str) -> WorkerLane:
        lane = self._lanes.get(worker)
        if lane is None:
            lane = WorkerLane(worker=worker, spawned_at=self.clock())
            self._lanes[worker] = lane
        return lane

    def _suspect(self, suspicion: Suspicion) -> None:
        self.suspicions.append(suspicion)
        if self.ledger is not None:
            self.ledger.event(
                "suspect", kind=suspicion.kind, worker=suspicion.worker,
                pid=suspicion.pid, unit=suspicion.unit,
                label=suspicion.label or None,
                age_s=round(suspicion.age_s, 3), detail=suspicion.detail)
        if self.observer is not None and self.observer.enabled:
            self.observer.worker_suspect(suspicion)
