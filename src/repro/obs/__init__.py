"""Campaign observability: exporters, live progress, and the repro bench.

The layers below this one *compute*; ``repro.obs`` *watches*.  It sits at
the top of the stack (above analysis, streaming and the runner) and
never feeds anything back down — enabling any part of it cannot change
a result, an analysis, or a cache fingerprint.  Three pillars:

* **Exporters** (:mod:`~repro.obs.flows`, :mod:`~repro.obs.metrics`,
  :mod:`~repro.obs.exporters`, :mod:`~repro.obs.collect`) — turn each
  session into NetFlow/IPFIX-style flow records and metric time-series
  and serialize them to JSONL, CSV, or Prometheus text exposition.
  Exports are deterministic: byte-identical for any ``--jobs`` value and
  with telemetry recording on or off.
* **Live progress** (:mod:`~repro.obs.progress`) — an opt-in engine
  observer keeping one ``\\r``-rewritten status line on stderr
  (done/total, rate, ETA, cache-hit/fault/retry counts).  Default-off
  behind the same single-guard pattern as the telemetry layer.
* **Bench** (:mod:`~repro.obs.bench`) — the ``repro bench``
  perf-regression tracker: run a suite, write a schema-versioned
  ``BENCH_<gitsha>.json``, and ``--compare`` two of them with a
  configurable regression threshold.

See ``docs/OBSERVABILITY.md`` for formats and workflows.
"""

from .bench import (
    BENCH_SCHEMA,
    BenchWriter,
    QUICK_SUITE,
    Regression,
    compare,
    format_comparison,
    format_history,
    git_sha,
    load_bench,
    load_history,
    peak_rss_kb,
    run_suite,
)
from .collect import (
    AGGREGATE_FIELDS,
    CampaignCollector,
    CampaignSnapshot,
    FAILURE_FIELDS,
)
from .exporters import (
    export_records,
    prometheus_lines,
    write_csv,
    write_jsonl,
    write_prometheus,
)
from .flows import FLOW_FIELDS, flow_records
from .metrics import METRIC_FIELDS, metric_samples
from .progress import ProgressReporter

__all__ = [
    "AGGREGATE_FIELDS",
    "BENCH_SCHEMA",
    "BenchWriter",
    "CampaignCollector",
    "CampaignSnapshot",
    "FAILURE_FIELDS",
    "FLOW_FIELDS",
    "METRIC_FIELDS",
    "ProgressReporter",
    "QUICK_SUITE",
    "Regression",
    "compare",
    "export_records",
    "flow_records",
    "format_comparison",
    "format_history",
    "git_sha",
    "load_bench",
    "load_history",
    "metric_samples",
    "peak_rss_kb",
    "prometheus_lines",
    "run_suite",
    "write_csv",
    "write_jsonl",
    "write_prometheus",
]
