"""Campaign observability: exporters, live progress, and the repro bench.

The layers below this one *compute*; ``repro.obs`` *watches*.  It sits at
the top of the stack (above analysis, streaming and the runner) and
never feeds anything back down — enabling any part of it cannot change
a result, an analysis, or a cache fingerprint.  Three pillars:

* **Exporters** (:mod:`~repro.obs.flows`, :mod:`~repro.obs.metrics`,
  :mod:`~repro.obs.exporters`, :mod:`~repro.obs.collect`) — turn each
  session into NetFlow/IPFIX-style flow records and metric time-series
  and serialize them to JSONL, CSV, or Prometheus text exposition.
  Exports are deterministic: byte-identical for any ``--jobs`` value and
  with telemetry recording on or off.
* **Live progress** (:mod:`~repro.obs.progress`) — an opt-in engine
  observer keeping one ``\\r``-rewritten status line on stderr
  (done/total, rate, ETA, cache-hit/fault/retry counts).  Default-off
  behind the same single-guard pattern as the telemetry layer.
* **Bench** (:mod:`~repro.obs.bench`) — the ``repro bench``
  perf-regression tracker: run a suite, write a schema-versioned
  ``BENCH_<gitsha>.json``, and ``--compare`` two of them with a
  configurable regression threshold.
* **Engine health** (:mod:`~repro.obs.health`, :mod:`~repro.obs.ledger`,
  :mod:`~repro.obs.dash`, :mod:`~repro.obs.report`) — the campaign
  control plane: per-worker heartbeats and straggler detection
  (:class:`HealthMonitor`), an append-only JSONL run ledger
  (:class:`RunLedger`), the live ``repro dash`` worker-lane dashboard,
  and the post-hoc ``repro report`` renderer.  All of it observes the
  supervised engine through the same default-off hook — health on or
  off, exports stay byte-identical.

See ``docs/OBSERVABILITY.md`` for formats and workflows.
"""

from .bench import (
    BENCH_SCHEMA,
    BenchWriter,
    QUICK_SUITE,
    Regression,
    compare,
    format_comparison,
    format_history,
    git_sha,
    load_bench,
    load_history,
    peak_rss_kb,
    run_suite,
)
from .collect import (
    AGGREGATE_FIELDS,
    CampaignCollector,
    CampaignSnapshot,
    FAILURE_FIELDS,
)
from .dash import DashboardReporter
from .exporters import (
    export_records,
    prometheus_lines,
    write_csv,
    write_jsonl,
    write_prometheus,
)
from .flows import FLOW_FIELDS, flow_records
from .health import (
    HealthMonitor,
    HealthPolicy,
    Suspicion,
    WorkerLane,
)
from .ledger import (
    LEDGER_SCHEMA,
    LedgerView,
    RunLedger,
    ledger_path,
    load_ledger,
)
from .metrics import METRIC_FIELDS, metric_samples
from .progress import ProgressReporter
from .report import render_html, render_report, write_report

__all__ = [
    "AGGREGATE_FIELDS",
    "BENCH_SCHEMA",
    "BenchWriter",
    "CampaignCollector",
    "CampaignSnapshot",
    "DashboardReporter",
    "FAILURE_FIELDS",
    "FLOW_FIELDS",
    "HealthMonitor",
    "HealthPolicy",
    "LEDGER_SCHEMA",
    "LedgerView",
    "METRIC_FIELDS",
    "ProgressReporter",
    "QUICK_SUITE",
    "Regression",
    "RunLedger",
    "Suspicion",
    "WorkerLane",
    "compare",
    "export_records",
    "flow_records",
    "format_comparison",
    "format_history",
    "git_sha",
    "ledger_path",
    "load_bench",
    "load_history",
    "load_ledger",
    "metric_samples",
    "peak_rss_kb",
    "prometheus_lines",
    "render_html",
    "render_report",
    "run_suite",
    "write_csv",
    "write_jsonl",
    "write_prometheus",
    "write_report",
]
