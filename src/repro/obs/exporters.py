"""Serializers: JSONL, CSV and Prometheus text exposition format.

One record schema (plain dicts, see :mod:`repro.obs.flows` and
:mod:`repro.obs.metrics`), three wire formats:

* **JSONL** — one JSON object per line, insertion-ordered keys; the
  lowest-common-denominator format every analysis tool slurps.
* **CSV** — fixed column order (the caller supplies it), ``""`` for
  ``None``; loads straight into pandas/R/spreadsheets.
* **Prometheus text exposition** — ``metric{labels} value [timestamp]``
  lines with ``# TYPE`` headers, suitable for a file-based scrape
  (node_exporter's textfile collector) or a pushgateway.

All three are deterministic: records are written in the order given,
floats render via ``repr`` round-trip formatting, and nothing consults
the clock — the byte-identity guarantees of the engine carry through to
the files.
"""

from __future__ import annotations

import csv
import json
import re
from pathlib import Path
from typing import Dict, List, Optional, Sequence

__all__ = [
    "export_records",
    "prometheus_lines",
    "write_csv",
    "write_jsonl",
    "write_prometheus",
]

_LABEL_SANITIZE = re.compile(r"[^a-zA-Z0-9_]")


def write_jsonl(records: Sequence[Dict], path) -> int:
    """Write one JSON object per line; returns the line count."""
    with open(path, "w", encoding="utf-8") as f:
        for record in records:
            f.write(json.dumps(record) + "\n")
    return len(records)


def write_csv(records: Sequence[Dict], path,
              fields: Optional[Sequence[str]] = None) -> int:
    """Write records as CSV; returns the data-row count.

    ``fields`` fixes the column order; when omitted it is the union of
    keys in first-seen order.  Missing values render as empty cells.
    """
    if fields is None:
        seen: Dict[str, None] = {}
        for record in records:
            for key in record:
                seen.setdefault(key, None)
        fields = list(seen)
    with open(path, "w", encoding="utf-8", newline="") as f:
        writer = csv.DictWriter(f, fieldnames=list(fields),
                                restval="", extrasaction="ignore")
        writer.writeheader()
        for record in records:
            writer.writerow({k: ("" if v is None else v)
                             for k, v in record.items()})
    return len(records)


def _prom_name(name: str) -> str:
    return _LABEL_SANITIZE.sub("_", name)


def _prom_label_value(value) -> str:
    """Escape a label value per the text exposition format.

    Backslash, double-quote and newline are the three characters the
    format reserves inside quoted label values; anything else passes
    through verbatim.  Without this, a session or video name like
    ``ca"t.flv`` (hostile input, or just an odd catalog entry) produced
    unparseable exposition lines.

    >>> _prom_label_value('plain')
    'plain'
    >>> _prom_label_value('a"b\\\\c\\nd')
    'a\\\\"b\\\\\\\\c\\\\nd'
    """
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _prom_value(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, (int, float)):
        return repr(value) if isinstance(value, float) else str(value)
    raise TypeError(f"not a Prometheus sample value: {value!r}")


def prometheus_lines(records: Sequence[Dict], *, prefix: str = "repro",
                     value_key: str = "value",
                     timestamp_key: Optional[str] = "t",
                     metric_key: str = "metric",
                     label_keys: Sequence[str] = ("session",)) -> List[str]:
    """Render records as Prometheus text-exposition lines.

    Each record contributes one ``<prefix>_<metric>{labels} value [ts]``
    line; a ``# TYPE`` header (gauge) precedes the first sample of each
    metric.  Timestamps are converted from simulated seconds to the
    format's milliseconds; pass ``timestamp_key=None`` to omit them.

    >>> prometheus_lines([
    ...     {"metric": "up", "session": "s0", "t": 1.5, "value": 2.0}])
    ['# TYPE repro_up gauge', 'repro_up{session="s0"} 2.0 1500']
    """
    lines: List[str] = []
    typed = set()
    for record in records:
        name = f"{prefix}_{_prom_name(str(record[metric_key]))}"
        if name not in typed:
            typed.add(name)
            lines.append(f"# TYPE {name} gauge")
        labels = ",".join(
            f'{_prom_name(key)}="{_prom_label_value(record[key])}"'
            for key in label_keys if record.get(key) is not None
        )
        line = f"{name}{{{labels}}} {_prom_value(record[value_key])}"
        if timestamp_key is not None and record.get(timestamp_key) is not None:
            line += f" {int(record[timestamp_key] * 1000)}"
        lines.append(line)
    return lines


def write_prometheus(records: Sequence[Dict], path, **kwargs) -> int:
    """Write records in Prometheus text exposition format; returns the
    sample-line count (``# TYPE`` headers excluded)."""
    lines = prometheus_lines(records, **kwargs)
    with open(path, "w", encoding="utf-8") as f:
        for line in lines:
            f.write(line + "\n")
    return sum(1 for line in lines if not line.startswith("#"))


#: File-suffix → format dispatch used by :func:`export_records`.
_SUFFIXES = {
    ".jsonl": "jsonl",
    ".csv": "csv",
    ".prom": "prometheus",
    ".txt": "prometheus",
}


def export_records(records: Sequence[Dict], path, *,
                   fields: Optional[Sequence[str]] = None,
                   **prom_kwargs) -> int:
    """Write ``records`` in the format implied by the file suffix.

    ``.jsonl`` → JSONL, ``.csv`` → CSV (ordered by ``fields``),
    ``.prom``/``.txt`` → Prometheus exposition (``prom_kwargs`` forwarded
    to :func:`prometheus_lines`).  Returns the record/sample count.
    """
    suffix = Path(path).suffix.lower()
    fmt = _SUFFIXES.get(suffix)
    if fmt is None:
        raise ValueError(
            f"cannot infer export format from {path!r}; use one of "
            f"{', '.join(sorted(_SUFFIXES))}"
        )
    if fmt == "jsonl":
        return write_jsonl(records, path)
    if fmt == "csv":
        return write_csv(records, path, fields)
    return write_prometheus(records, path, **prom_kwargs)
