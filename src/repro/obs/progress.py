"""Live run progress: a single updating stderr line over the engine hook.

Multi-minute campaigns (`repro experiment all --jobs 8`) previously ran
silent until the first report printed.  :class:`ProgressReporter` is a
run observer (see :class:`repro.runner.NullRunObserver`) that keeps one
``\\r``-rewritten status line on stderr::

    sessions 37/96  3.1/s  eta 19s  cache 12/37  retries 2  faults 0

Default-off and zero-cost when off: the engine's observer defaults to
the disabled ``NULL_OBSERVER`` and every call site guards with a single
``if observer.enabled:`` check — the same pattern as the telemetry
layer's ``NullRecorder``.  The reporter only *observes* completions; it
never changes what the engine computes, so enabling it cannot perturb
results.

Two terminal realities it respects:

* **Non-TTY stderr** (CI logs, ``2> file``): the ``\\r`` dance would
  smear one unreadable mega-line, so the reporter degrades to whole
  plain lines emitted at most every ``plain_interval`` seconds.
* **KeyboardInterrupt**: used as a context manager (``with reporter:``)
  the in-place line is always released with a newline on the way out —
  including the Ctrl-C path — so the traceback or shell prompt never
  lands mid-line.

The displayed total is the number of units *scheduled so far*: an
experiment reveals its batches one ``run_sessions`` call at a time, so
the total (and the ETA derived from it) grows as the campaign
progresses.
"""

from __future__ import annotations

import sys
import time
from typing import Any, Optional, Sequence, TextIO

from ..runner.pool import NullRunObserver
from ..runner.sharding import ShardResult

__all__ = [
    "ProgressReporter",
]


class ProgressReporter(NullRunObserver):
    """Render engine progress as one updating stderr line."""

    enabled = True

    def __init__(self, stream: Optional[TextIO] = None,
                 min_interval: float = 0.1,
                 label: str = "sessions",
                 plain_interval: float = 5.0) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval = min_interval
        self.plain_interval = plain_interval
        self.label = label
        # smoothed completion rate: EWMA over inter-completion intervals,
        # so the ETA tracks the *current* pace instead of the whole-run
        # average (which goes stale after a cache-hit burst or a slow
        # warmup).  Shard campaigns smooth in the same display units —
        # each ShardResult is one engine unit — so the ETA stays
        # consistent whether units are sessions or whole shards.
        self.ewma_alpha = 0.3
        self._rate = 0.0
        self._last_done_at: Optional[float] = None
        self.total = 0
        self.done = 0
        self.cache_hits = 0
        self.retries = 0
        self.faults = 0
        self.failed = 0
        self.shards_done = 0
        self.shards_total = 0
        self._batch_live_shards = 0
        self._shard_campaigns: set = set()
        self._workers: set = set()
        self._started = time.monotonic()
        self._last_render = 0.0
        self._width = 0
        self._closed = False
        self._dirty = False
        self._emitted = False
        # \r rewriting only makes sense on a real terminal; everywhere
        # else (CI logs, redirected stderr) emit occasional plain lines
        try:
            self._tty = bool(self.stream.isatty())
        except (AttributeError, ValueError, OSError):
            self._tty = False

    # -- observer callbacks --------------------------------------------------

    def batch_started(self, units: int, cache_hits: int) -> None:
        """Grow the known total; count cache hits as instantly done."""
        self.total += units
        self.done += cache_hits
        self.cache_hits += cache_hits
        self._batch_live_shards = 0
        self._render(force=self._tty)

    def _note_shard_campaign(self, spec) -> None:
        # a campaign may fan out several shard groups (one per strategy,
        # say); the displayed total sums each group's size once
        if spec.campaign not in self._shard_campaigns:
            self._shard_campaigns.add(spec.campaign)
            self.shards_total += spec.of

    def unit_finished(self, value: Any) -> None:
        """One simulated unit completed."""
        self.done += 1
        now = time.monotonic()
        if self._last_done_at is not None and now > self._last_done_at:
            sample = 1.0 / (now - self._last_done_at)
            self._rate = (sample if self._rate == 0.0
                          else self.ewma_alpha * sample
                          + (1 - self.ewma_alpha) * self._rate)
        self._last_done_at = now
        if isinstance(value, ShardResult):
            self.shards_done += 1
            self._batch_live_shards += 1
            self._note_shard_campaign(value.shard)
        self._render()

    def worker_beat(self, lane) -> None:
        """A worker lane beat (supervised pool or distributed fleet):
        track the live fleet size for the ``workers`` segment.  A lane
        reported missing (lease older than the TTL, heartbeat silent)
        leaves the count until it beats again."""
        worker = getattr(lane, "worker", None)
        if worker is None:
            return
        if getattr(lane, "missing", False):
            self._workers.discard(worker)
        else:
            self._workers.add(worker)
        self._render()

    def unit_failed(self, failure) -> None:
        """A supervised attempt failed: count the retry or the quarantine."""
        if failure.final:
            self.failed += 1
            # a quarantined unit will never reach unit_finished; count it
            # as settled so the line (and the ETA) can still converge
            self.done += 1
        else:
            self.retries += 1
        self._render(force=self._tty)

    def batch_finished(self, values: Sequence[Any]) -> None:
        """Fold the batch's fault/retry counters into the status line."""
        batch_shards = 0
        for value in values:
            self.retries += getattr(value, "retry_count", 0) or 0
            fault_log = getattr(value, "fault_log", None)
            if fault_log is not None:
                self.faults += len(fault_log)
            if isinstance(value, ShardResult):
                batch_shards += 1
                self._note_shard_campaign(value.shard)
        if batch_shards:
            # cache-hit shards never pass through unit_finished; credit
            # whatever the live counter did not already see
            self.shards_done += batch_shards - self._batch_live_shards
            self._batch_live_shards = 0
        self._render(force=self._tty)

    # -- rendering -----------------------------------------------------------

    def _line(self) -> str:
        elapsed = max(time.monotonic() - self._started, 1e-9)
        rate = self._rate if self._rate > 0 else self.done / elapsed
        parts = [f"{self.label} {self.done}/{self.total}"]
        if self.shards_total:
            parts.append(f"shards {self.shards_done}/{self.shards_total}")
        if self._workers:
            parts.append(f"workers {len(self._workers)}")
        parts.append(f"{rate:.1f}/s")
        remaining = self.total - self.done
        if remaining > 0 and rate > 0:
            parts.append(f"eta {remaining / rate:.0f}s")
        parts.append(f"cache {self.cache_hits}/{self.done}")
        if self.retries:
            parts.append(f"retries {self.retries}")
        if self.faults:
            parts.append(f"faults {self.faults}")
        if self.failed:
            parts.append(f"failed {self.failed}")
        return "  ".join(parts)

    def _render(self, force: bool = False) -> None:
        if self._closed:
            return
        self._dirty = True
        now = time.monotonic()
        interval = self.min_interval if self._tty else self.plain_interval
        if not force and now - self._last_render < interval:
            return
        self._emit(now)

    def _emit(self, now: float) -> None:
        self._last_render = now
        self._dirty = False
        self._emitted = True
        line = self._line()
        if self._tty:
            pad = " " * max(0, self._width - len(line))
            self._width = len(line)
            self.stream.write(f"\r{line}{pad}")
        else:
            self.stream.write(line + "\n")
        self.stream.flush()

    def close(self) -> None:
        """Print the final status and release the line (idempotent).

        Safe to call from a ``finally`` around an interrupted campaign:
        the in-place line is completed and terminated with a newline so
        whatever prints next starts on a fresh line.
        """
        if self._closed:
            return
        # non-TTY campaigns always get a final summary line — including
        # zero-unit ones, which never mark the line dirty at all
        if self._tty or self._dirty or not self._emitted:
            self._emit(time.monotonic())
        self._closed = True
        if self._tty:
            self.stream.write("\n")
            self.stream.flush()

    def __enter__(self) -> "ProgressReporter":
        return self

    def __exit__(self, *exc) -> None:
        # runs on success, exceptions, and KeyboardInterrupt alike —
        # the terminal line must be restored before anything else prints
        self.close()
