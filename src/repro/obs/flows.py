"""Flow-record extraction: one NetFlow/IPFIX-style dict per TCP flow.

The paper's unit of analysis is the flow record — 5-tuple, byte and
packet counts, retransmission behaviour — enriched with the session-level
verdicts its measurement pipeline derives (streaming strategy, ON/OFF
block count) and the QoE ledger the resilient clients keep.  This module
turns a :class:`~repro.streaming.session.SessionResult` into exactly
those records, as plain dicts ready for any serializer.

Determinism contract: a flow record is a pure function of the session's
packet records and QoE fields.  It never reads telemetry, wall-clock
time or engine state, so exports are byte-identical across worker counts
and with recording on or off.
"""

from __future__ import annotations

from typing import Dict, List

from ..analysis.classify import classify_onoff
from ..analysis.flowtable import build_download_trace
from ..analysis.onoff import detect_onoff
from ..streaming.session import SessionResult

__all__ = [
    "FLOW_FIELDS",
    "flow_records",
]

#: Column order for tabular (CSV) flow exports — every record carries
#: exactly these keys, in this order.
FLOW_FIELDS = (
    "session",
    "video",
    "network",
    "service",
    "application",
    "container",
    "protocol",
    "src_ip",
    "src_port",
    "dst_ip",
    "dst_port",
    "first_ts",
    "last_ts",
    "packets",
    "bytes",
    "unique_bytes",
    "retransmitted_bytes",
    "retransmission_rate",
    "handshake_rtt",
    "strategy",
    "onoff_blocks",
    "startup_delay_s",
    "rebuffer_count",
    "rebuffer_ratio",
    "stall_time_s",
    "retry_count",
    "fault_events",
    "interrupted",
    "failed",
)


def flow_records(result: SessionResult, session_id: str) -> List[Dict]:
    """Flow records for one session, ordered by (first_ts, 5-tuple).

    Each record is one downstream TCP flow (server → client) with the
    session-level fields — strategy label, ON/OFF block count, QoE —
    repeated on every flow of the session, the way flow exporters
    denormalize per-exporter attributes.
    """
    trace = build_download_trace(result.records, result.client_ip,
                                 result.server_ip)
    onoff = detect_onoff(trace.events, stream_end=trace.last_data_time)
    classification = classify_onoff(onoff)
    session_fields = {
        "session": session_id,
        "video": result.video.video_id,
        "network": result.config.profile.name,
        "service": result.config.service.name,
        "application": result.config.application.name,
        "container": result.container.name,
        "strategy": str(classification.strategy),
        "onoff_blocks": classification.cycle_count,
        "startup_delay_s": result.startup_delay_s,
        "rebuffer_count": result.rebuffer_count,
        "rebuffer_ratio": result.rebuffer_ratio,
        "stall_time_s": result.stall_time_s,
        "retry_count": result.retry_count,
        "fault_events": (len(result.fault_log)
                         if result.fault_log is not None else 0),
        "interrupted": result.interrupted,
        "failed": result.failed,
    }
    flows = sorted(
        trace.flows.values(),
        key=lambda f: (f.first_data_time if f.first_data_time is not None
                       else float("inf"), f.key),
    )
    records: List[Dict] = []
    for flow in flows:
        src_ip, src_port, dst_ip, dst_port = flow.key
        flow_fields = {
            "protocol": "tcp",
            "src_ip": src_ip,
            "src_port": src_port,
            "dst_ip": dst_ip,
            "dst_port": dst_port,
            "first_ts": flow.first_data_time,
            "last_ts": flow.last_data_time,
            "packets": flow.packet_count,
            "bytes": flow.total_payload_bytes,
            "unique_bytes": flow.unique_bytes,
            "retransmitted_bytes": flow.retransmitted_bytes,
            "retransmission_rate": flow.retransmission_rate,
            "handshake_rtt": flow.handshake_rtt,
        }
        merged = {**session_fields, **flow_fields}
        records.append({key: merged[key] for key in FLOW_FIELDS})
    return records
