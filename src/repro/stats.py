"""Mergeable streaming statistics: moments and histogram sketches.

The million-session campaign engine (:mod:`repro.runner.sharding`) never
holds a campaign's sessions in memory — each shard folds what it observes
into a small, constant-size summary, and the summaries *merge*.  This
module provides the two primitives every such summary is built from:

* :class:`MomentAccumulator` — count / mean / M2 in Welford form, with
  the Chan et al. parallel-merge rule, so the variance of a million
  observations is exact (to float rounding) whether they were folded by
  one accumulator or by a thousand that merged afterwards.
* :class:`HistogramSketch` — a fixed logarithmic binning of positive
  values.  Because the bin edges are a property of the *type*, not the
  data, two sketches built independently always merge bin-for-bin, and a
  merged percentile is bit-identical to the unsharded one.

Both are plain dataclasses: they pickle across the worker pool, land in
the shard artifact store unchanged, and carry no references back to the
data they summarized.

Determinism contract: ``add`` order affects ``mean``/``m2`` only through
float rounding (documented tolerance ~1e-12 relative); ``count``,
``total``, ``min``, ``max`` and every bin count are integer-or-exact and
therefore bit-identical across any sharding of the same observations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

__all__ = [
    "HistogramSketch",
    "MomentAccumulator",
]


@dataclass
class MomentAccumulator:
    """Streaming count/mean/M2 (Welford) with exact parallel merge.

    >>> a, b, whole = MomentAccumulator(), MomentAccumulator(), MomentAccumulator()
    >>> for v in (1.0, 2.0, 3.0):
    ...     a.add(v)
    ...     whole.add(v)
    >>> for v in (4.0, 5.0):
    ...     b.add(v)
    ...     whole.add(v)
    >>> a.merge(b)
    >>> a.count == whole.count and abs(a.variance - whole.variance) < 1e-12
    True
    """

    count: int = 0
    mean: float = 0.0
    m2: float = 0.0
    total: float = 0.0
    min: Optional[float] = None
    max: Optional[float] = None

    def add(self, value: float) -> None:
        """Fold one observation in (Welford's online update)."""
        self.count += 1
        self.total += value
        delta = value - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (value - self.mean)
        self.min = value if self.min is None else (
            value if value < self.min else self.min)
        self.max = value if self.max is None else (
            value if value > self.max else self.max)

    def add_many(self, values: Iterable[float]) -> None:
        """Fold a batch of observations (numpy arrays welcome).

        Uses the exact batch moments of ``values`` and one Chan merge, so
        folding a 100k-sample grid costs two vectorized passes instead of
        100k python-level updates when numpy is available.
        """
        try:
            import numpy as np

            arr = np.asarray(values, dtype=float)
            if arr.size == 0:
                return
            batch = MomentAccumulator(
                count=int(arr.size),
                mean=float(arr.mean()),
                m2=float(arr.var() * arr.size),
                total=float(arr.sum()),
                min=float(arr.min()),
                max=float(arr.max()),
            )
            self.merge(batch)
        except ImportError:  # pragma: no cover - numpy is a hard dep
            for value in values:
                self.add(value)

    def merge(self, other: "MomentAccumulator") -> None:
        """Fold another accumulator in (Chan et al. parallel variance)."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self.m2 = other.m2
            self.total = other.total
            self.min = other.min
            self.max = other.max
            return
        count = self.count + other.count
        delta = other.mean - self.mean
        self.m2 += other.m2 + delta * delta * self.count * other.count / count
        self.mean += delta * other.count / count
        self.count = count
        self.total += other.total
        self.min = min(self.min, other.min)  # type: ignore[arg-type]
        self.max = max(self.max, other.max)  # type: ignore[arg-type]

    @property
    def variance(self) -> float:
        """Population variance of the observations (0.0 when empty)."""
        return self.m2 / self.count if self.count else 0.0

    @property
    def std(self) -> float:
        """Population standard deviation (0.0 when empty)."""
        return math.sqrt(self.variance) if self.count else 0.0


#: Default bins per decade: relative resolution 10**(1/12) ~ 1.21.
BINS_PER_DECADE = 12

#: Default clamp range: 1e-9 .. 1e15 covers microseconds to petabits.
MIN_EXP = -9
MAX_EXP = 15


@dataclass
class HistogramSketch:
    """Fixed logarithmic histogram of non-negative values.

    Bin ``i`` covers ``[10**(i/bpd), 10**((i+1)/bpd))`` — the edges are
    fixed by ``bins_per_decade`` alone, never by the data, which is what
    makes independently-built sketches mergeable bin-for-bin.  Values
    ``<= 0`` land in a dedicated underflow counter ordered before every
    bin.  Quantiles are exact in rank and log-linear within a bin, so
    their value error is bounded by one bin width (~21% relative at the
    default 12 bins/decade); counts and ranks are exact integers, so a
    merged percentile is *bit-identical* to the unsharded one.

    >>> s = HistogramSketch()
    >>> for v in (1.0, 10.0, 100.0):
    ...     s.observe(v)
    >>> s.count
    3
    >>> 9.0 < s.percentile(50) < 11.0
    True
    """

    bins_per_decade: int = BINS_PER_DECADE
    counts: Dict[int, int] = field(default_factory=dict)
    underflow: int = 0

    def _index(self, value: float) -> int:
        i = math.floor(math.log10(value) * self.bins_per_decade)
        lo = MIN_EXP * self.bins_per_decade
        hi = MAX_EXP * self.bins_per_decade
        return lo if i < lo else (hi if i > hi else i)

    def observe(self, value: float) -> None:
        """Fold one observation in."""
        if value <= 0.0:
            self.underflow += 1
            return
        i = self._index(value)
        self.counts[i] = self.counts.get(i, 0) + 1

    def observe_many(self, values: Iterable[float]) -> None:
        """Fold a batch of observations via one vectorized pass."""
        try:
            import numpy as np
        except ImportError:  # pragma: no cover - numpy is a hard dep
            for value in values:
                self.observe(value)
            return
        arr = np.asarray(values, dtype=float)
        if arr.size == 0:
            return
        positive = arr[arr > 0.0]
        self.underflow += int(arr.size - positive.size)
        if positive.size == 0:
            return
        idx = np.floor(np.log10(positive) * self.bins_per_decade).astype(int)
        np.clip(idx, MIN_EXP * self.bins_per_decade,
                MAX_EXP * self.bins_per_decade, out=idx)
        bins, bin_counts = np.unique(idx, return_counts=True)
        for i, n in zip(bins.tolist(), bin_counts.tolist()):
            self.counts[i] = self.counts.get(i, 0) + n

    def merge(self, other: "HistogramSketch") -> None:
        """Fold another sketch in; binnings must match."""
        if other.bins_per_decade != self.bins_per_decade:
            raise ValueError(
                f"cannot merge sketches with different binnings: "
                f"{self.bins_per_decade} vs {other.bins_per_decade}"
            )
        self.underflow += other.underflow
        for i, n in other.counts.items():
            self.counts[i] = self.counts.get(i, 0) + n

    @property
    def count(self) -> int:
        """Total observations folded in (underflow included)."""
        return self.underflow + sum(self.counts.values())

    def percentile(self, q: float) -> Optional[float]:
        """The ``q``-th percentile (0-100), or ``None`` when empty.

        Rank selection is exact; the returned value is log-linear within
        the selected bin, so its error is bounded by the bin width.
        Underflow observations report as ``0.0``.
        """
        if not 0 <= q <= 100:
            raise ValueError(f"percentile out of range: {q}")
        total = self.count
        if total == 0:
            return None
        # nearest-rank on the cumulative counts: deterministic, mergeable
        rank = (q / 100.0) * (total - 1)
        target = int(rank)
        frac = rank - target
        if target < self.underflow:
            return 0.0
        seen = self.underflow
        for i in sorted(self.counts):
            n = self.counts[i]
            if target < seen + n:
                offset = (target - seen + frac) / n
                exponent = (i + offset) / self.bins_per_decade
                return 10.0 ** exponent
            seen += n
        # q == 100 with frac landing past the last observation
        last = max(self.counts)
        return 10.0 ** ((last + 1) / self.bins_per_decade)
