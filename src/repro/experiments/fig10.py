"""Figure 10 — Netflix streaming strategies.

Representative traces in the Academic network: PCs and the iPad show
short ON-OFF cycles; the native Android application shows long cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..analysis import analyze_session, format_table, median
from ..simnet import ACADEMIC, TimeSeries
from ..streaming import (
    Application,
    Service,
    SessionConfig,
    StreamingStrategy,
)
from ..workloads import make_netpc
from .common import MB, SMALL, Scale, SessionPlan, pick_videos, run_sessions


@dataclass
class Fig10Trace:
    label: str
    strategy: StreamingStrategy
    download_series: TimeSeries
    median_block: float
    connections: int
    median_off: float


@dataclass
class Fig10Result:
    traces: List[Fig10Trace]

    def report(self) -> str:
        rows = [
            (
                t.label,
                str(t.strategy),
                f"{t.median_block / MB:.2f}",
                t.connections,
                f"{t.median_off:.1f}",
                f"{t.download_series.last()[1] / 1e6:.0f}",
            )
            for t in self.traces
        ]
        return format_table(
            ["Client", "Strategy", "MedBlk(MB)", "Conns", "MedOFF(s)",
             "Downloaded(MB)"],
            rows,
            title="Figure 10 — Netflix strategies (Academic network)",
        )


def run(scale: Scale = SMALL, seed: int = 0) -> Fig10Result:
    catalog = make_netpc(seed=seed, scale=max(0.25, scale.catalog_scale))
    video = pick_videos(catalog, 1, seed, min_duration=1800.0)[0]
    cases = [
        ("PC Acad.", Application.FIREFOX),
        ("iPad Acad.", Application.IOS),
        ("Android Acad.", Application.ANDROID),
    ]
    plans = [
        SessionPlan(video, SessionConfig(
            profile=ACADEMIC,
            service=Service.NETFLIX,
            application=application,
            capture_duration=scale.capture_duration,
            seed=seed,
        ))
        for _label, application in cases
    ]
    results = run_sessions(plans)

    traces = []
    for (label, _application), result in zip(cases, results):
        analysis = analyze_session(result, use_true_rate=True)
        blocks = analysis.block_sizes
        offs = analysis.onoff.off_durations()
        traces.append(
            Fig10Trace(
                label=label,
                strategy=analysis.strategy,
                download_series=analysis.trace.cumulative_series(),
                median_block=median(blocks) if blocks else 0.0,
                connections=result.connections_opened,
                median_off=median(offs) if offs else 0.0,
            )
        )
    return Fig10Result(traces)
