"""One experiment module per table/figure of the paper, behind a registry.

Each experiment is described by an :class:`ExperimentSpec` — its CLI name,
human title, the table/figure of the paper it reproduces, and tags — and
runs through :meth:`ExperimentSpec.run`, which installs the session-engine
options (worker pool size, result cache) before delegating to the module's
``run(scale, seed)``.  The :data:`REGISTRY` maps name to spec and is the
single source of truth: the CLI, the examples, ``__all__`` and the
completeness tests all derive from it.

    >>> from repro.experiments import get_experiment
    >>> spec = get_experiment("table1")
    >>> result = spec.run(jobs=4, cache="~/.cache/repro/sessions")
    >>> print(result.report())
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import ModuleType
from typing import Dict, Iterator, Optional, Tuple

from . import (
    ext_fault_recovery,
    ext_loss_impact,
    fig1,
    fig2,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    model_validation,
    table1,
    table2,
)
from .common import FULL, MEDIUM, SCALES, SMALL, Scale, engine_options, pick_videos
from ..runner import CacheLike, RunStats


@dataclass(frozen=True)
class ExperimentSpec:
    """Everything the framework knows about one experiment.

    ``module`` must expose ``run(scale, seed) -> result`` where the result
    renders itself via ``report()``; the spec adds the campaign-level
    concerns (parallelism, caching) that no experiment handles itself.
    """

    name: str                     # CLI name, unique across the registry
    title: str                    # human-readable one-liner
    paper: str                    # which table/figure/section it reproduces
    module: ModuleType
    tags: Tuple[str, ...] = field(default=())

    def run(
        self,
        scale: Scale = SMALL,
        seed: int = 0,
        *,
        jobs: Optional[int] = None,
        cache: CacheLike = None,
        stats: Optional[RunStats] = None,
        supervision=None,
        journal=None,
        failures=None,
        sharding=None,
        health=None,
        dist=None,
    ):
        """Run the experiment with engine options installed ambiently.

        All keywords default to ``None`` = inherit the surrounding
        :func:`~repro.runner.engine_options` scope, so nested callers
        (CLI around spec, test around CLI) compose.  ``supervision``,
        ``journal`` and ``failures`` are the durability layer: a
        :class:`~repro.runner.SupervisionPolicy`, a
        :class:`~repro.runner.CampaignJournal` and a
        :class:`~repro.runner.FailureReport` to accumulate into.
        ``sharding`` is a :class:`~repro.runner.Sharding` policy;
        sharding-aware experiments (``model_validation``) scale their
        campaign to it, others ignore it.  ``health`` is a
        :class:`~repro.obs.health.HealthMonitor` watching the supervised
        workers (report-only: results are identical with or without it).
        ``dist`` is a :class:`~repro.runner.DistPolicy`: shard batches
        then run over the distributed work queue instead of the local
        pool, with byte-identical results.
        """
        with engine_options(jobs=jobs, cache=cache, stats=stats,
                            supervision=supervision, journal=journal,
                            failures=failures, sharding=sharding,
                            health=health, dist=dist):
            return self.module.run(scale, seed=seed)


def _spec(name: str, title: str, paper: str, module: ModuleType,
          *tags: str) -> ExperimentSpec:
    return ExperimentSpec(name=name, title=title, paper=paper,
                          module=module, tags=tuple(tags))


#: Name -> spec, in the paper's presentation order.
REGISTRY: Dict[str, ExperimentSpec] = {
    spec.name: spec
    for spec in (
        _spec("table1", "Streaming strategy per (application, container)",
              "Table 1", table1, "table", "matrix"),
        _spec("fig1", "Phases of a video download",
              "Fig. 1", fig1, "figure", "phases"),
        _spec("fig2", "Short ON-OFF cycles and the receive window",
              "Fig. 2", fig2, "figure", "onoff"),
        _spec("fig3", "Buffering amounts (Flash, HTML5/IE)",
              "Fig. 3", fig3, "figure", "buffering"),
        _spec("fig4", "Flash steady state (64 kB blocks, k=1.25)",
              "Fig. 4", fig4, "figure", "steady-state"),
        _spec("fig5", "HTML5/IE steady state (256 kB blocks)",
              "Fig. 5", fig5, "figure", "steady-state"),
        _spec("fig6", "Long ON-OFF cycles (Chrome, Android)",
              "Fig. 6", fig6, "figure", "onoff"),
        _spec("fig7", "iPad: multiple strategies in one session",
              "Fig. 7", fig7, "figure", "strategies"),
        _spec("fig8", "No ON-OFF cycles (HD); rate uncorrelated",
              "Fig. 8", fig8, "figure", "bulk"),
        _spec("fig9", "The missing ACK clock (+ idle-reset ablation)",
              "Fig. 9", fig9, "figure", "tcp"),
        _spec("fig10", "Netflix strategies",
              "Fig. 10", fig10, "figure", "netflix"),
        _spec("fig11", "Netflix buffering amounts",
              "Fig. 11", fig11, "figure", "netflix", "buffering"),
        _spec("fig12", "Netflix block sizes",
              "Fig. 12", fig12, "figure", "netflix", "steady-state"),
        _spec("table2", "Strategy comparison under interruption",
              "Table 2", table2, "table", "interruption"),
        _spec("model_validation", "Analytical model vs Monte-Carlo (Eqs 1-9)",
              "Sec. 6", model_validation, "model"),
        _spec("ext_loss_impact", "Strategy impact on congestion losses",
              "Sec. 8 (ext.)", ext_loss_impact, "extension", "loss"),
        _spec("ext_fault_recovery", "Outage duration x retry policy",
              "extension", ext_fault_recovery, "extension", "resilience"),
    )
}


def get_experiment(name: str) -> ExperimentSpec:
    """The spec registered under ``name``; raises ``KeyError`` with the
    known names when unknown."""
    try:
        return REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; know {', '.join(REGISTRY)}"
        ) from None


def iter_experiments() -> Iterator[ExperimentSpec]:
    """The registered specs, in the paper's presentation order."""
    return iter(REGISTRY.values())


__all__ = [
    "ExperimentSpec",
    "REGISTRY",
    "get_experiment",
    "iter_experiments",
    "Scale",
    "SMALL",
    "MEDIUM",
    "FULL",
    "SCALES",
    "engine_options",
    "pick_videos",
    *REGISTRY,
]
