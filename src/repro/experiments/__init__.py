"""One experiment module per table/figure of the paper.

Each module exposes ``run(scale=SMALL, seed=0)`` returning a result object
with a ``report()`` method printing the rows/series the paper reports.

==================  ==========================================
Module              Paper content
==================  ==========================================
``table1``          Table 1: strategy per (application, container)
``fig1``            Fig 1: the phases schematic, from a real session
``fig2``            Fig 2: short ON-OFF + receive-window evolution
``fig3``            Fig 3: buffering amounts (Flash, HTML5/IE)
``fig4``            Fig 4: Flash steady state (64 kB, k=1.25)
``fig5``            Fig 5: HTML5/IE steady state (256 kB)
``fig6``            Fig 6: long ON-OFF (Chrome, Android)
``fig7``            Fig 7: iPad's multiple strategies
``fig8``            Fig 8: no ON-OFF (HD); rate uncorrelated
``fig9``            Fig 9: missing ACK clock (+ idle-reset ablation)
``fig10``           Fig 10: Netflix strategies
``fig11``           Fig 11: Netflix buffering amounts
``fig12``           Fig 12: Netflix block sizes
``table2``          Table 2: strategy comparison under interruption
``model_validation`` Section 6: Eqs (1)-(9) vs Monte-Carlo
``ext_loss_impact`` Extension: strategy impact on congestion losses
                    (the future work named in Section 8)
``ext_fault_recovery`` Extension: outage duration x retry policy —
                    stall detection, backoff reconnect, Range resume
==================  ==========================================
"""

from . import (
    ext_fault_recovery,
    ext_loss_impact,
    fig1,
    fig2,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    model_validation,
    table1,
    table2,
)
from .common import FULL, MEDIUM, SCALES, SMALL, Scale, pick_videos

ALL_EXPERIMENTS = {
    "table1": table1,
    "fig1": fig1,
    "fig2": fig2,
    "fig3": fig3,
    "fig4": fig4,
    "fig5": fig5,
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "fig9": fig9,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
    "table2": table2,
    "model_validation": model_validation,
    "ext_loss_impact": ext_loss_impact,
    "ext_fault_recovery": ext_fault_recovery,
}

__all__ = [
    "Scale",
    "SMALL",
    "MEDIUM",
    "FULL",
    "SCALES",
    "pick_videos",
    "ALL_EXPERIMENTS",
    "table1",
    "fig1",
    "ext_loss_impact",
    "ext_fault_recovery",
    "table2",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "model_validation",
]
