"""Figure 1 — the phases of a video download (the paper's schematic).

Figure 1 is an illustration: a buffering phase climbing at the end-to-end
available bandwidth, then a steady state of ON-OFF cycles whose slope is
the average rate.  This experiment regenerates the schematic's quantities
from an actual simulated session — buffering duration and amount, cycle
duration, block size, ON and OFF durations, the two slopes — and renders
the download curve as a text plot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..analysis import analyze_session, mean
from ..simnet import RESEARCH, TimeSeries
from ..streaming import (
    Application,
    Container,
    Service,
    SessionConfig,
)
from ..workloads import MBPS, Video
from .common import SMALL, Scale, SessionPlan, run_sessions

KB = 1024


@dataclass
class Fig1Result:
    download_series: TimeSeries
    buffering_end_s: float
    buffering_bytes: int
    buffering_slope_bps: float      # ~ end-to-end available bandwidth
    steady_slope_bps: float         # ~ k * e
    cycle_duration_s: float
    block_bytes: float
    on_duration_s: float
    off_duration_s: float
    encoding_rate_bps: float

    def ascii_plot(self, width: int = 64, height: int = 12) -> str:
        """The Figure 1 curve as a text plot (time -> download amount)."""
        t1 = self.download_series.times[-1]
        top = self.download_series.values[-1]
        rows = [[" "] * width for _ in range(height)]
        for i in range(width):
            t = t1 * i / (width - 1)
            try:
                value = self.download_series.value_at(t)
            except ValueError:
                value = 0.0
            row = height - 1 - int(value / top * (height - 1))
            rows[row][i] = "#"
        boundary_col = int(self.buffering_end_s / t1 * (width - 1))
        for row in rows:
            if row[boundary_col] == " ":
                row[boundary_col] = "|"
        lines = ["".join(row) for row in rows]
        lines.append("-" * width)
        label = "buffering | steady state (ON-OFF cycles)"
        lines.append(label[:width])
        return "\n".join(lines)

    def report(self) -> str:
        return "\n".join([
            "Figure 1 — phases of a video download (regenerated from a "
            "simulated Flash session)",
            "",
            self.ascii_plot(),
            "",
            f"  buffering phase : {self.buffering_end_s:.1f} s, "
            f"{self.buffering_bytes / 1e6:.1f} MB at "
            f"{self.buffering_slope_bps / 1e6:.1f} Mbps "
            "(end-to-end available bandwidth)",
            f"  steady state    : {self.steady_slope_bps / 1e6:.2f} Mbps "
            f"average (encoding rate {self.encoding_rate_bps / 1e6:.2f} "
            "Mbps x accumulation ratio)",
            f"  cycle duration  : {self.cycle_duration_s:.2f} s  "
            f"(ON {self.on_duration_s * 1000:.0f} ms + "
            f"OFF {self.off_duration_s:.2f} s)",
            f"  block size      : {self.block_bytes / KB:.0f} kB per cycle",
        ])


def run(scale: Scale = SMALL, seed: int = 0) -> Fig1Result:
    video = Video(video_id="fig1", duration=600.0,
                  encoding_rate_bps=1.0 * MBPS, resolution="360p",
                  container="flv")
    config = SessionConfig(
        profile=RESEARCH, service=Service.YOUTUBE,
        application=Application.FIREFOX, container=Container.FLASH,
        capture_duration=min(60.0, scale.capture_duration), seed=seed,
    )
    result = run_sessions([SessionPlan(video, config)])[0]
    analysis = analyze_session(result)
    phases = analysis.phases
    onoff = analysis.onoff
    ons = onoff.on_periods[1:]
    offs = onoff.off_periods
    buffering_slope = (phases.buffering_bytes * 8 / phases.buffering_end
                       if phases.buffering_end else 0.0)
    return Fig1Result(
        download_series=analysis.trace.cumulative_series(),
        buffering_end_s=phases.buffering_end or 0.0,
        buffering_bytes=phases.buffering_bytes,
        buffering_slope_bps=buffering_slope,
        steady_slope_bps=phases.steady_rate_bps,
        cycle_duration_s=onoff.mean_cycle_duration() or 0.0,
        block_bytes=mean([p.bytes for p in ons]) if ons else 0.0,
        on_duration_s=mean([p.duration for p in ons]) if ons else 0.0,
        off_duration_s=mean([p.duration for p in offs]) if offs else 0.0,
        encoding_rate_bps=analysis.encoding_rate_bps or 0.0,
    )
