"""Figure 5 — steady state of HTML5 videos on Internet Explorer.

(a) Block sizes: IE pulls 256 kB quanta, so 256 kB dominates in every
network.  (b) Accumulation ratios computed with the *estimated* encoding
rate (Content-Length / duration) show a spread around ~1 (paper: mean
1.06, median 1.04).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..analysis import (
    Cdf,
    analyze_session,
    dominant_value,
    format_table,
    fraction_within,
    mean,
    median,
)
from ..simnet import PROFILE_ORDER, get_profile
from ..streaming import (
    Application,
    Container,
    Service,
    SessionConfig,
)
from ..workloads import make_dataset
from .common import MB, SMALL, Scale, SessionPlan, pick_videos, run_sessions

KB = 1024


@dataclass
class Fig5Network:
    network: str
    block_sizes: List[int]
    accumulation_ratios: List[float]

    @property
    def dominant_block(self) -> float:
        return dominant_value(self.block_sizes, bin_width=32 * KB) or 0.0


@dataclass
class Fig5Result:
    networks: List[Fig5Network]

    @property
    def all_ratios(self) -> List[float]:
        out: List[float] = []
        for net in self.networks:
            out.extend(net.accumulation_ratios)
        return out

    def report(self) -> str:
        rows = []
        for net in self.networks:
            share_256k = fraction_within(
                net.block_sizes, 224 * KB, 288 * KB) if net.block_sizes else 0.0
            rows.append((
                net.network,
                f"{net.dominant_block / KB:.0f}",
                f"{share_256k:.0%}",
                f"{median(net.accumulation_ratios):.2f}"
                if net.accumulation_ratios else "-",
            ))
        table = format_table(
            ["Network", "DominantBlk(kB)", "near256kB", "MedianAccum"],
            rows,
            title="Figure 5 — HTML5/IE steady state: 256 kB blocks",
        )
        ratios = self.all_ratios
        tail = (
            f"\nAccumulation ratio across networks: mean={mean(ratios):.2f} "
            f"median={median(ratios):.2f}  (paper: mean 1.06, median 1.04)"
            if ratios else ""
        )
        return table + tail


def run(scale: Scale = SMALL, seed: int = 0) -> Fig5Result:
    catalog = make_dataset("YouHtml", seed=seed,
                           scale=max(0.05, scale.catalog_scale))
    videos = pick_videos(catalog, scale.sessions_per_cell, seed,
                         min_size_bytes=30 * MB, max_size_bytes=250 * MB)
    plans = [
        SessionPlan(video, SessionConfig(
            profile=get_profile(name),
            service=Service.YOUTUBE,
            application=Application.INTERNET_EXPLORER,
            container=Container.HTML5,
            capture_duration=scale.capture_duration,
            seed=seed + 17 * i,
        ))
        for name in PROFILE_ORDER
        for i, video in enumerate(videos)
    ]
    results = iter(run_sessions(plans))

    networks = []
    for name in PROFILE_ORDER:
        blocks: List[int] = []
        ratios: List[float] = []
        for _video in videos:
            # the paper estimates the rate from Content-Length / duration
            analysis = analyze_session(next(results))
            blocks.extend(analysis.block_sizes)
            ratio = analysis.accumulation_ratio
            if ratio is not None:
                ratios.append(ratio)
        networks.append(Fig5Network(name, blocks, ratios))
    return Fig5Result(networks)
