"""Table 1 — the streaming-strategy matrix.

Streams one representative video per (service, container, application)
cell, classifies the captured traffic, and compares against the published
matrix.  The paper's central qualitative result is that every cell
reproduces: Flash is Short everywhere, HTML5 depends on the browser,
HD is a bulk transfer, and Netflix is Short except on Android.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..analysis import analyze_session, format_table
from ..simnet import ACADEMIC, RESEARCH
from ..streaming import (
    TABLE1_EXPECTED,
    Application,
    Combo,
    Container,
    Service,
    SessionConfig,
    StreamingStrategy,
)
from ..workloads import make_dataset
from .common import MB, SMALL, Scale, SessionPlan, pick_videos, run_sessions


@dataclass
class Table1Cell:
    service: Service
    container: Container
    application: Application
    expected: StreamingStrategy
    observed: StreamingStrategy
    median_block: float        # bytes; 0 when no steady state
    cycles: int

    @property
    def matches(self) -> bool:
        return self.expected is self.observed


@dataclass
class Table1Result:
    cells: List[Table1Cell]

    @property
    def accuracy(self) -> float:
        return sum(c.matches for c in self.cells) / len(self.cells)

    def report(self) -> str:
        rows = [
            (
                str(c.service),
                str(c.container),
                str(c.application),
                str(c.expected),
                str(c.observed),
                "yes" if c.matches else "NO",
                f"{c.median_block / 1024:.0f}" if c.median_block else "-",
                c.cycles,
            )
            for c in self.cells
        ]
        table = format_table(
            ["Service", "Container", "Application", "Paper", "Observed",
             "Match", "MedBlock(kB)", "Cycles"],
            rows,
            title="Table 1 — streaming strategy per (application, container)",
        )
        return f"{table}\n\nCell agreement: {self.accuracy:.0%}"


def _video_for(combo: Combo, scale: Scale, seed: int):
    """A representative video big enough to exhibit the cell's steady state."""
    service, container, application = combo
    if service is Service.NETFLIX:
        catalog = make_dataset("NetPC", seed=seed, scale=max(0.25, scale.catalog_scale))
        return pick_videos(catalog, 1, seed, min_duration=1800.0)[0]
    if container in (Container.FLASH, Container.FLASH_HD):
        name = "YouHD" if container is Container.FLASH_HD else "YouFlash"
        catalog = make_dataset(name, seed=seed, scale=max(0.02, scale.catalog_scale))
        # HD bulk transfers download everything: cap the size for runtime
        return pick_videos(catalog, 1, seed, min_size_bytes=8 * MB,
                           max_size_bytes=80 * MB)[0]
    name = "YouMob" if application.is_mobile else "YouHtml"
    catalog = make_dataset(name, seed=seed, scale=max(0.05, scale.catalog_scale))
    # HTML5 players buffer 4-15 MB up front: the video must be larger to
    # ever reach steady state (smaller ones are plain file transfers), and
    # the rate high enough that several long cycles fit in the capture
    return pick_videos(catalog, 1, seed, min_size_bytes=30 * MB,
                       max_size_bytes=200 * MB, min_rate_bps=1.5e6)[0]


def run(scale: Scale = SMALL, seed: int = 0) -> Table1Result:
    plans = []
    for combo in TABLE1_EXPECTED:
        service, container, application = combo
        video = _video_for(combo, scale, seed)
        profile = ACADEMIC if service is Service.NETFLIX else RESEARCH
        config = SessionConfig(
            profile=profile,
            service=service,
            application=application,
            container=container,
            capture_duration=max(scale.capture_duration, 120.0),
            seed=seed,
        )
        plans.append(SessionPlan(video, config))
    results = run_sessions(plans)

    cells = []
    for (combo, expected), result in zip(TABLE1_EXPECTED.items(), results):
        service, container, application = combo
        analysis = analyze_session(result, use_true_rate=True)
        blocks = sorted(analysis.block_sizes)
        cells.append(
            Table1Cell(
                service=service,
                container=container,
                application=application,
                expected=expected,
                observed=analysis.strategy,
                median_block=blocks[len(blocks) // 2] if blocks else 0.0,
                cycles=analysis.classification.cycle_count,
            )
        )
    return Table1Result(cells)
