"""Figure 2 — short ON-OFF cycles and who enforces them.

Streams one Flash video and one HTML5 video through Internet Explorer in
the Research network and extracts (a) the cumulative download amount and
(b) the client's advertised receive-window evolution.  The paper's point:
both sessions show short ON-OFF steps, but only the HTML5 session's
receive window periodically empties — for Flash the throttling must be
server-side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..analysis import analyze_session
from ..simnet import RESEARCH, TimeSeries
from ..streaming import (
    Application,
    Container,
    Service,
    SessionConfig,
)
from ..workloads import MBPS, Video
from .common import SMALL, Scale, SessionPlan, run_sessions

KB = 1024


@dataclass
class Fig2Trace:
    label: str
    download_series: TimeSeries     # cumulative bytes
    window_series: TimeSeries       # advertised window, bytes
    steady_window_min: float
    steady_window_max: float
    median_block: float


@dataclass
class Fig2Result:
    flash: Fig2Trace
    html5: Fig2Trace

    def report(self) -> str:
        lines = ["Figure 2 — short ON-OFF cycles (Research network, IE)"]
        for trace in (self.flash, self.html5):
            final = trace.download_series.last()[1] / 1e6
            lines.append(
                f"  {trace.label:12s} downloaded={final:6.1f} MB  "
                f"median block={trace.median_block / KB:6.0f} kB  "
                f"steady rwnd min/max = {trace.steady_window_min / KB:.0f}/"
                f"{trace.steady_window_max / KB:.0f} kB"
            )
        lines.append(
            "  -> HTML5/IE window periodically empties (client throttles); "
            "Flash window stays open (server throttles)."
        )
        return "\n".join(lines)


def _plan(video: Video, container: Container, duration: float,
          seed: int) -> SessionPlan:
    config = SessionConfig(
        profile=RESEARCH,
        service=Service.YOUTUBE,
        application=Application.INTERNET_EXPLORER,
        container=container,
        capture_duration=duration,
        seed=seed,
    )
    return SessionPlan(video, config)


def _trace(result, container: Container) -> Fig2Trace:
    analysis = analyze_session(result, use_true_rate=True)
    windows = analysis.trace.window_series
    steady = windows.values[len(windows) // 2:] or [0.0]
    blocks = sorted(analysis.block_sizes)
    return Fig2Trace(
        label=str(container),
        download_series=analysis.trace.cumulative_series(),
        window_series=windows,
        steady_window_min=min(steady),
        steady_window_max=max(steady),
        median_block=blocks[len(blocks) // 2] if blocks else 0.0,
    )


def run(scale: Scale = SMALL, seed: int = 0) -> Fig2Result:
    duration = max(60.0, scale.capture_duration / 2)
    flash_video = Video(
        video_id="fig2-flash", duration=400.0, encoding_rate_bps=1.0 * MBPS,
        resolution="360p", container="flv",
    )
    html5_video = Video(
        video_id="fig2-html5", duration=400.0, encoding_rate_bps=2.0 * MBPS,
        resolution="360p", container="webm",
    )
    flash_result, html5_result = run_sessions([
        _plan(flash_video, Container.FLASH, duration, seed),
        _plan(html5_video, Container.HTML5, duration, seed),
    ])
    return Fig2Result(
        flash=_trace(flash_result, Container.FLASH),
        html5=_trace(html5_result, Container.HTML5),
    )
