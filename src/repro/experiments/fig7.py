"""Figure 7 — YouTube on the iPad uses multiple strategies.

(a) Two videos: a high-encoding-rate one streams via periodic buffering
over many successive TCP connections (Video1: 37 connections in the first
minute, requests 64 kB - 8 MB); a low-rate one streams over a single
connection with short cycles (Video2).

(b) The mean block size grows with the encoding rate: the native player
picks renditions by bandwidth/device, so the strategy depends on the
encoding rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..analysis import analyze_session, correlation, format_table
from ..simnet import RESEARCH, TimeSeries
from ..streaming import (
    Application,
    Container,
    Service,
    SessionConfig,
    StreamingStrategy,
)
from ..workloads import MBPS, Video, make_dataset
from .common import MB, SMALL, Scale, SessionPlan, pick_videos, run_sessions


@dataclass
class Fig7Video:
    label: str
    encoding_rate_bps: float
    connections: int
    connections_first_minute: int
    strategy: StreamingStrategy
    request_size_range: Tuple[float, float]
    download_series: TimeSeries


@dataclass
class Fig7Point:
    encoding_rate_bps: float
    mean_block: float       # per-session median block (robust "typical" size)


@dataclass
class Fig7Result:
    video1: Fig7Video
    video2: Fig7Video
    points: List[Fig7Point]
    rate_block_correlation: float

    def report(self) -> str:
        lines = ["Figure 7(a) — two iPad sessions (Research network)"]
        for v in (self.video1, self.video2):
            lo, hi = v.request_size_range
            lines.append(
                f"  {v.label}: rate={v.encoding_rate_bps / 1e6:.2f} Mbps  "
                f"strategy={v.strategy}  connections={v.connections} "
                f"(first 60 s: {v.connections_first_minute})  "
                f"blocks {lo / 1024:.0f} kB - {hi / MB:.1f} MB"
            )
        rows = [
            (f"{p.encoding_rate_bps / 1e6:.2f}", f"{p.mean_block / 1024:.0f}")
            for p in sorted(self.points, key=lambda p: p.encoding_rate_bps)
        ]
        table = format_table(
            ["EncodingRate(Mbps)", "MeanBlock(kB)"],
            rows,
            title="Figure 7(b) — block size grows with encoding rate",
        )
        return (
            "\n".join(lines)
            + "\n\n" + table
            + f"\n\ncorr(encoding rate, mean block) = "
              f"{self.rate_block_correlation:.2f}"
        )


def _ipad_plan(video: Video, scale: Scale, seed: int) -> SessionPlan:
    return SessionPlan(video, SessionConfig(
        profile=RESEARCH,
        service=Service.YOUTUBE,
        application=Application.IOS,
        container=Container.HTML5,
        capture_duration=scale.capture_duration,
        seed=seed,
    ))


def _trace(video: Video, result) -> Fig7Video:
    analysis = analyze_session(result, use_true_rate=True)
    blocks = analysis.block_sizes
    # connections opened in the first minute: SYNs from the client
    syns = [r for r in result.records
            if r.is_syn and r.src_ip == result.client_ip]
    first_minute = sum(1 for r in syns if r.timestamp <= 60.0)
    label = "Video1" if video.encoding_rate_bps >= 1e6 else "Video2"
    return Fig7Video(
        label=label,
        encoding_rate_bps=video.encoding_rate_bps,
        connections=result.connections_opened,
        connections_first_minute=first_minute,
        strategy=analysis.strategy,
        request_size_range=(min(blocks), max(blocks)) if blocks else (0.0, 0.0),
        download_series=analysis.trace.cumulative_series(),
    )


def run(scale: Scale = SMALL, seed: int = 0) -> Fig7Result:
    video1 = Video(
        video_id="fig7-video1", duration=400.0, encoding_rate_bps=2.4 * MBPS,
        resolution="480p", container="webm",
        variants=(("240p", 0.6 * MBPS), ("720p", 4.0 * MBPS)),
    )
    video2 = Video(
        video_id="fig7-video2", duration=500.0, encoding_rate_bps=0.5 * MBPS,
        resolution="240p", container="webm",
    )
    from ..analysis import median as _median

    catalog = make_dataset("YouMob", seed=seed, scale=max(0.05, scale.catalog_scale))
    videos = pick_videos(catalog, max(8, scale.sessions_per_cell), seed,
                         min_size_bytes=15 * MB, max_size_bytes=200 * MB)
    plans = [_ipad_plan(video1, scale, seed), _ipad_plan(video2, scale, seed + 1)]
    plans += [_ipad_plan(video, scale, seed + 13 * i)
              for i, video in enumerate(videos)]
    results = run_sessions(plans)

    trace1 = _trace(video1, results[0])
    trace2 = _trace(video2, results[1])

    points: List[Fig7Point] = []
    for video, result in zip(videos, results[2:]):
        analysis = analyze_session(result, use_true_rate=True)
        if analysis.block_sizes:
            # the device may stream a different rendition than the default
            rate = result.playback_rate_bps
            points.append(Fig7Point(rate, _median(analysis.block_sizes)))
    corr = (
        correlation([p.encoding_rate_bps for p in points],
                    [p.mean_block for p in points])
        if len(points) > 1 else 0.0
    )
    return Fig7Result(video1=trace1, video2=trace2, points=points,
                      rate_block_correlation=corr)
