"""Section 6 — model validation experiments.

Three parts:

1. **Moment validation** (Eqs (1)-(4)): Monte-Carlo aggregates of Poisson
   video sessions under all three strategies versus the closed forms —
   the means and variances agree, and are invariant across strategies.
2. **Interruption threshold** (Eq (7)): the 53.3 s worked example, plus
   the condition checked against per-session simulation.
3. **Wasted bandwidth** (Eqs (8)-(9)): Monte-Carlo waste versus the
   closed form, and the (B', k) sweep behind the paper's recommendation
   to shrink buffering and accumulation for interruption-heavy workloads.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List

from ..analysis import format_table
from ..model import (
    PopulationMoments,
    aggregate_mean_exact,
    aggregate_variance,
    coefficient_of_variation,
    constant_strategy,
    critical_duration,
    encoding_rate_migration,
    plan_for,
    short_onoff_strategy,
    simulate_aggregate,
    simulate_wasted_bandwidth,
    waste_sweep,
    wasted_bandwidth_exact,
)
from ..workloads import EmpiricalInterruptionModel, make_youflash
from .common import SMALL, Scale, run_tasks

#: Strategy factories reconstructed by name inside the Monte-Carlo worker,
#: so the task arguments stay plain (picklable, fingerprintable) data.
STRATEGY_NAMES = ("No ON-OFF", "Short ON-OFF", "Long ON-OFF")


def _strategy_factory(name: str):
    if name == "No ON-OFF":
        return constant_strategy
    if name == "Short ON-OFF":
        return short_onoff_strategy()
    if name == "Long ON-OFF":
        return short_onoff_strategy(
            block_bytes=5 * 1024 * 1024, buffering_playback_s=60.0)
    raise ValueError(f"unknown strategy {name!r}")


def _moment_sample(catalog, lam: float, horizon: float, name: str,
                   peak: float, seed: int):
    sample = simulate_aggregate(
        catalog, lam, horizon=horizon, strategy=_strategy_factory(name),
        peak_bps=peak, seed=seed)
    return sample.mean_bps, sample.variance_bps2


def _waste_sample(catalog, lam: float, horizon: float,
                  buffering_playback_s: float, accumulation_ratio: float,
                  seed: int) -> float:
    interruptions = EmpiricalInterruptionModel()
    return simulate_wasted_bandwidth(
        catalog, lam, horizon=horizon,
        buffering_playback_s=buffering_playback_s,
        accumulation_ratio=accumulation_ratio,
        beta_sampler=lambda r, L: interruptions.sample(r, L).beta,
        seed=seed)


@dataclass
class MomentRow:
    strategy: str
    empirical_mean: float
    model_mean: float
    empirical_var: float
    model_var: float

    @property
    def mean_error(self) -> float:
        return abs(self.empirical_mean - self.model_mean) / self.model_mean

    @property
    def var_error(self) -> float:
        return abs(self.empirical_var - self.model_var) / self.model_var


@dataclass
class ModelValidationResult:
    moment_rows: List[MomentRow]
    critical_duration_s: float
    waste_empirical_bps: float
    waste_closed_bps: float
    sweep_rows: List
    migration_smoothness_ratio: float

    def report(self) -> str:
        rows = [
            (
                r.strategy,
                f"{r.empirical_mean / 1e6:.1f}",
                f"{r.model_mean / 1e6:.1f}",
                f"{r.mean_error:.1%}",
                f"{r.empirical_var / 1e12:.1f}",
                f"{r.model_var / 1e12:.1f}",
                f"{r.var_error:.1%}",
            )
            for r in self.moment_rows
        ]
        moments = format_table(
            ["Strategy", "E[R] sim(Mbps)", "E[R] eq3", "err",
             "Var sim(Tb2)", "Var eq4", "err"],
            rows,
            title="Section 6.1 — aggregate moments, simulation vs model",
        )
        sweep = format_table(
            ["B'(s)", "k", "Wasted(Mbps)", "Share"],
            [
                (f"{p.buffering_playback_s:.0f}", f"{p.accumulation_ratio:.2f}",
                 f"{p.wasted_bps / 1e6:.2f}", f"{p.wasted_share:.0%}")
                for p in self.sweep_rows
            ],
            title="Section 6.2 — wasted bandwidth vs (buffering, accumulation)",
        )
        waste_err = (abs(self.waste_empirical_bps - self.waste_closed_bps)
                     / self.waste_closed_bps)
        return "\n\n".join([
            moments,
            (f"Eq (7) worked example: B'=40 s, k=1.25, beta=0.2 -> "
             f"critical duration = {self.critical_duration_s:.1f} s "
             f"(paper: 53.3 s)"),
            (f"Eq (9) wasted bandwidth: simulation "
             f"{self.waste_empirical_bps / 1e6:.2f} Mbps vs closed form "
             f"{self.waste_closed_bps / 1e6:.2f} Mbps (err {waste_err:.1%})"),
            sweep,
            (f"Encoding-rate doubling: smoothness (CV) ratio = "
             f"{self.migration_smoothness_ratio:.3f} (model: 1/sqrt(2) = "
             f"0.707) — higher rates give smoother aggregate traffic"),
        ])


def run(scale: Scale = SMALL, seed: int = 0) -> ModelValidationResult:
    catalog = make_youflash(seed=seed, scale=max(0.02, scale.catalog_scale))
    lam = 0.3
    peak = 8e6
    horizon = scale.mc_horizon

    moments = PopulationMoments.from_catalog(catalog, download_rate_bps=peak)
    model_mean = aggregate_mean_exact(lam, moments)
    model_var = aggregate_variance(lam, moments)

    samples = run_tasks(_moment_sample, [
        (catalog, lam, horizon, name, peak, seed + 1)
        for name in STRATEGY_NAMES
    ])
    moment_rows = [
        MomentRow(
            strategy=name,
            empirical_mean=mean_bps,
            model_mean=model_mean,
            empirical_var=variance_bps2,
            model_var=model_var,
        )
        for name, (mean_bps, variance_bps2) in zip(STRATEGY_NAMES, samples)
    ]

    critical = critical_duration(40.0, 1.25, 0.2)

    interruptions = EmpiricalInterruptionModel()
    sessions = []
    rng = random.Random(seed + 2)
    for video in catalog:
        outcome = interruptions.sample(rng, video.duration)
        sessions.append((video.encoding_rate_bps, video.duration,
                         outcome.beta))
    closed = wasted_bandwidth_exact(lam, sessions, 40.0, 1.25)
    [empirical] = run_tasks(_waste_sample,
                            [(catalog, lam, horizon, 40.0, 1.25, seed + 3)])

    sweep = waste_sweep(lam, sessions, [5.0, 20.0, 40.0], [1.0, 1.25, 1.5])
    migration = encoding_rate_migration(lam, moments, rate_scale=2.0)

    return ModelValidationResult(
        moment_rows=moment_rows,
        critical_duration_s=critical,
        waste_empirical_bps=empirical,
        waste_closed_bps=closed,
        sweep_rows=sweep,
        migration_smoothness_ratio=migration.smoothness_ratio,
    )
