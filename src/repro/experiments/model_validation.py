"""Section 6 — model validation experiments.

Three parts:

1. **Moment validation** (Eqs (1)-(4)): Monte-Carlo aggregates of Poisson
   video sessions under all three strategies versus the closed forms —
   the means and variances agree, and are invariant across strategies.
2. **Interruption threshold** (Eq (7)): the 53.3 s worked example, plus
   the condition checked against per-session simulation.
3. **Wasted bandwidth** (Eqs (8)-(9)): Monte-Carlo waste versus the
   closed form, and the (B', k) sweep behind the paper's recommendation
   to shrink buffering and accumulation for interruption-heavy workloads.

The moment validation is sharding-aware: when the ambient engine options
carry a :class:`~repro.runner.Sharding` policy (``repro experiment
model_validation --sessions 1000000 --shards 64``), the Poisson horizon
implied by the session target splits into per-strategy horizon shards,
each simulated independently through the supervised shard engine and
reduced to mergeable :class:`~repro.model.AggregateMoments` — so the
model is validated against *campaign-scale* populations (10^4..10^6
sessions) in O(shards) memory, with shard-level caching and resume.
Without a policy the original single-run path executes unchanged.
"""

from __future__ import annotations

import copy
import random
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..analysis import format_table
from ..model import (
    PopulationMoments,
    aggregate_mean_exact,
    aggregate_variance,
    coefficient_of_variation,
    constant_strategy,
    critical_duration,
    encoding_rate_migration,
    plan_for,
    short_onoff_strategy,
    simulate_aggregate,
    simulate_aggregate_moments,
    simulate_wasted_bandwidth,
    waste_sweep,
    wasted_bandwidth_exact,
)
from ..runner import ShardResult, ShardSpec, current_options, run_shards
from ..workloads import EmpiricalInterruptionModel, make_youflash
from .common import SMALL, Scale, run_tasks

#: Strategy factories reconstructed by name inside the Monte-Carlo worker,
#: so the task arguments stay plain (picklable, fingerprintable) data.
STRATEGY_NAMES = ("No ON-OFF", "Short ON-OFF", "Long ON-OFF")


def _strategy_factory(name: str):
    if name == "No ON-OFF":
        return constant_strategy
    if name == "Short ON-OFF":
        return short_onoff_strategy()
    if name == "Long ON-OFF":
        return short_onoff_strategy(
            block_bytes=5 * 1024 * 1024, buffering_playback_s=60.0)
    raise ValueError(f"unknown strategy {name!r}")


def _moment_sample(catalog, lam: float, horizon: float, name: str,
                   peak: float, seed: int):
    sample = simulate_aggregate(
        catalog, lam, horizon=horizon, strategy=_strategy_factory(name),
        peak_bps=peak, seed=seed)
    return sample.mean_bps, sample.variance_bps2


def _moment_shard(catalog, lam: float, horizon: float, name: str,
                  peak: float, seed: int):
    """Shard worker: one independent Monte-Carlo run over one horizon
    chunk, reduced to mergeable moments (never the grid itself)."""
    return simulate_aggregate_moments(
        catalog, lam, horizon=horizon, strategy=_strategy_factory(name),
        peak_bps=peak, seed=seed)


def _sharded_moments(catalog, lam: float, peak: float, scale: Scale,
                     seed: int, policy) -> Dict[str, object]:
    """One merged :class:`~repro.model.AggregateMoments` per strategy.

    The campaign's session target (``policy.sessions``, defaulting to
    the scale's horizon at rate ``lam``) becomes a Poisson horizon of
    ``sessions / lam`` seconds, split into ``policy.shards`` chunks —
    or, with ``policy.shard_size``, into ``ceil(sessions / size)``
    chunks of ``size`` sessions each, the fine granularity the
    distributed fabric's work-stealing feeds on.  Each chunk runs at
    full arrival rate with its own derived seed and its own warmup, so
    every shard contributes steady-state samples; shard seeds depend
    only on the campaign seed and shard index — not on the strategy —
    preserving the unsharded path's common-random-numbers comparison
    across strategies, and not on the shard *count*, so a
    re-dimensioned campaign (same per-shard horizon, more shards)
    reuses its cached shard artifacts.

    Reduction streams through ``run_shards(on_result=...)``: strategy
    aggregates merge in plan order as shards settle — identically on
    the local path (post-batch) and the distributed one (as artifacts
    land), so exports are byte-identical across transports.
    """
    sessions = policy.sessions or max(1, int(lam * scale.mc_horizon))
    shards = policy.shard_count(sessions)
    shard_horizon = (sessions / lam) / shards
    expected = max(1, round(lam * shard_horizon))
    units = []
    for name in STRATEGY_NAMES:
        for index in range(shards):
            spec = ShardSpec(campaign=f"model_validation:{name}",
                             scale=scale.name, seed=seed, index=index,
                             of=shards, units=expected)
            units.append((spec, (catalog, lam, shard_horizon, name, peak,
                                 seed + 1 + index)))
    merged: Dict[str, object] = {}

    def fold(result) -> None:
        if not isinstance(result, ShardResult):
            return  # quarantined shard under a degraded campaign
        name = result.shard.campaign.split(":", 1)[1]
        if name in merged:
            merged[name].merge(result.value)
        else:
            # deep-copied, never adopted: the accumulator must not alias
            # result.value — observers (the --aggregate collector) read
            # the shard values *after* this streaming fold on the
            # distributed path, and must see pristine per-shard moments
            merged[name] = copy.deepcopy(result.value)

    run_shards(_moment_shard, units, on_result=fold)
    return merged


def _waste_sample(catalog, lam: float, horizon: float,
                  buffering_playback_s: float, accumulation_ratio: float,
                  seed: int) -> float:
    interruptions = EmpiricalInterruptionModel()
    return simulate_wasted_bandwidth(
        catalog, lam, horizon=horizon,
        buffering_playback_s=buffering_playback_s,
        accumulation_ratio=accumulation_ratio,
        beta_sampler=lambda r, L: interruptions.sample(r, L).beta,
        seed=seed)


@dataclass
class MomentRow:
    strategy: str
    empirical_mean: float
    model_mean: float
    empirical_var: float
    model_var: float
    sessions: int = 0  # simulated arrivals behind the empirical moments

    @property
    def mean_error(self) -> float:
        return abs(self.empirical_mean - self.model_mean) / self.model_mean

    @property
    def var_error(self) -> float:
        return abs(self.empirical_var - self.model_var) / self.model_var


@dataclass
class ModelValidationResult:
    moment_rows: List[MomentRow]
    critical_duration_s: float
    waste_empirical_bps: float
    waste_closed_bps: float
    sweep_rows: List
    migration_smoothness_ratio: float
    shards: int = 0          # 0 = unsharded single-run path
    campaign_sessions: int = 0
    rate_percentiles: Dict[str, Tuple[float, float, float]] = \
        field(default_factory=dict)  # strategy -> (p50, p90, p99) bps

    def report(self) -> str:
        rows = [
            (
                r.strategy,
                f"{r.empirical_mean / 1e6:.1f}",
                f"{r.model_mean / 1e6:.1f}",
                f"{r.mean_error:.1%}",
                f"{r.empirical_var / 1e12:.1f}",
                f"{r.model_var / 1e12:.1f}",
                f"{r.var_error:.1%}",
            )
            for r in self.moment_rows
        ]
        moments = format_table(
            ["Strategy", "E[R] sim(Mbps)", "E[R] eq3", "err",
             "Var sim(Tb2)", "Var eq4", "err"],
            rows,
            title="Section 6.1 — aggregate moments, simulation vs model",
        )
        sweep = format_table(
            ["B'(s)", "k", "Wasted(Mbps)", "Share"],
            [
                (f"{p.buffering_playback_s:.0f}", f"{p.accumulation_ratio:.2f}",
                 f"{p.wasted_bps / 1e6:.2f}", f"{p.wasted_share:.0%}")
                for p in self.sweep_rows
            ],
            title="Section 6.2 — wasted bandwidth vs (buffering, accumulation)",
        )
        waste_err = (abs(self.waste_empirical_bps - self.waste_closed_bps)
                     / self.waste_closed_bps)
        parts = [moments]
        if self.shards:
            lines = [
                f"Sharded campaign: {self.campaign_sessions} sessions "
                f"across {self.shards} shards per strategy "
                f"(streaming reduction, O(shards) memory)",
            ]
            for name, (p50, p90, p99) in self.rate_percentiles.items():
                lines.append(
                    f"  {name:<14} aggregate rate p50={p50 / 1e6:.1f} "
                    f"p90={p90 / 1e6:.1f} p99={p99 / 1e6:.1f} Mbps")
            parts.append("\n".join(lines))
        return "\n\n".join(parts + [
            (f"Eq (7) worked example: B'=40 s, k=1.25, beta=0.2 -> "
             f"critical duration = {self.critical_duration_s:.1f} s "
             f"(paper: 53.3 s)"),
            (f"Eq (9) wasted bandwidth: simulation "
             f"{self.waste_empirical_bps / 1e6:.2f} Mbps vs closed form "
             f"{self.waste_closed_bps / 1e6:.2f} Mbps (err {waste_err:.1%})"),
            sweep,
            (f"Encoding-rate doubling: smoothness (CV) ratio = "
             f"{self.migration_smoothness_ratio:.3f} (model: 1/sqrt(2) = "
             f"0.707) — higher rates give smoother aggregate traffic"),
        ])


def run(scale: Scale = SMALL, seed: int = 0) -> ModelValidationResult:
    catalog = make_youflash(seed=seed, scale=max(0.02, scale.catalog_scale))
    lam = 0.3
    peak = 8e6
    horizon = scale.mc_horizon

    moments = PopulationMoments.from_catalog(catalog, download_rate_bps=peak)
    model_mean = aggregate_mean_exact(lam, moments)
    model_var = aggregate_variance(lam, moments)

    policy = current_options().sharding
    rate_percentiles: Dict[str, Tuple[float, float, float]] = {}
    campaign_sessions = 0
    effective_shards = 0
    if policy is not None:
        target = policy.sessions or max(1, int(lam * scale.mc_horizon))
        effective_shards = policy.shard_count(target)
    if policy is not None:
        aggregates = _sharded_moments(catalog, lam, peak, scale, seed,
                                      policy)
        moment_rows = [
            MomentRow(
                strategy=name,
                empirical_mean=agg.mean_bps,
                model_mean=model_mean,
                empirical_var=agg.variance_bps2,
                model_var=model_var,
                sessions=agg.sessions,
            )
            for name, agg in ((n, aggregates[n]) for n in STRATEGY_NAMES
                              if n in aggregates)
        ]
        campaign_sessions = sum(row.sessions for row in moment_rows)
        rate_percentiles = {
            name: tuple(aggregates[name].sketch.percentile(q)
                        for q in (50, 90, 99))
            for name in STRATEGY_NAMES if name in aggregates
        }
    else:
        samples = run_tasks(_moment_sample, [
            (catalog, lam, horizon, name, peak, seed + 1)
            for name in STRATEGY_NAMES
        ])
        moment_rows = [
            MomentRow(
                strategy=name,
                empirical_mean=mean_bps,
                model_mean=model_mean,
                empirical_var=variance_bps2,
                model_var=model_var,
            )
            for name, (mean_bps, variance_bps2) in zip(STRATEGY_NAMES,
                                                       samples)
        ]

    critical = critical_duration(40.0, 1.25, 0.2)

    interruptions = EmpiricalInterruptionModel()
    sessions = []
    rng = random.Random(seed + 2)
    for video in catalog:
        outcome = interruptions.sample(rng, video.duration)
        sessions.append((video.encoding_rate_bps, video.duration,
                         outcome.beta))
    closed = wasted_bandwidth_exact(lam, sessions, 40.0, 1.25)
    [empirical] = run_tasks(_waste_sample,
                            [(catalog, lam, horizon, 40.0, 1.25, seed + 3)])

    sweep = waste_sweep(lam, sessions, [5.0, 20.0, 40.0], [1.0, 1.25, 1.5])
    migration = encoding_rate_migration(lam, moments, rate_scale=2.0)

    return ModelValidationResult(
        moment_rows=moment_rows,
        critical_duration_s=critical,
        waste_empirical_bps=empirical,
        waste_closed_bps=closed,
        sweep_rows=sweep,
        migration_smoothness_ratio=migration.smoothness_ratio,
        shards=effective_shards,
        campaign_sessions=campaign_sessions,
        rate_percentiles=rate_percentiles,
    )
