"""Table 2 — comparison of the three streaming strategies.

For each strategy: the engineering complexity (a qualitative property of
the mechanism), the receive/player buffer occupancy, and the unused bytes
when the viewer quits after watching 20 % of the video.  The orderings the
paper reports — buffer occupancy and waste both Large > Moderate > Small
from No to Long to Short — come out of the simulated sessions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..analysis import format_table
from ..simnet import RESEARCH
from ..streaming import (
    Application,
    Container,
    Service,
    SessionConfig,
    StreamingStrategy,
)
from ..workloads import MBPS, Video
from .common import MB, SMALL, Scale, SessionPlan, run_sessions

COMPLEXITY = {
    StreamingStrategy.NO_ONOFF: "Not required",
    StreamingStrategy.LONG_ONOFF: "Application-layer support",
    StreamingStrategy.SHORT_ONOFF: "Application-layer support",
}


@dataclass
class Table2Row:
    strategy: StreamingStrategy
    engineering: str
    peak_buffer_bytes: float
    unused_bytes: float
    downloaded: int

    @property
    def unused_share(self) -> float:
        return self.unused_bytes / self.downloaded if self.downloaded else 0.0


@dataclass
class Table2Result:
    rows: List[Table2Row]
    watch_fraction: float

    def ordered(self) -> List[Table2Row]:
        order = [StreamingStrategy.NO_ONOFF, StreamingStrategy.LONG_ONOFF,
                 StreamingStrategy.SHORT_ONOFF]
        return sorted(self.rows, key=lambda r: order.index(r.strategy))

    def report(self) -> str:
        rows = [
            (
                str(r.strategy),
                r.engineering,
                f"{r.peak_buffer_bytes / MB:.1f}",
                f"{r.unused_bytes / MB:.1f}",
                f"{r.unused_share:.0%}",
            )
            for r in self.ordered()
        ]
        return format_table(
            ["Strategy", "Engineering", "PeakBuffer(MB)", "Unused(MB)",
             "UnusedShare"],
            rows,
            title=(f"Table 2 — strategy comparison (viewer quits after "
                   f"{self.watch_fraction:.0%} of the video)"),
        )


def run(scale: Scale = SMALL, seed: int = 0,
        watch_fraction: float = 0.2) -> Table2Result:
    # webM videos at several rates/durations, three HTML5 players: the
    # comparison isolates the *strategy* (who throttles and in what quanta)
    # with comparable buffering targets for the two throttled players.
    # Averaging across videos decorrelates the block-pull phases, which
    # otherwise dominate a single-session waste measurement.
    videos = [
        Video(video_id=f"table2-{i}", duration=duration,
              encoding_rate_bps=rate * MBPS, resolution="360p",
              container="webm")
        for i, (rate, duration) in enumerate(
            [(1.2, 520.0), (1.6, 500.0), (2.0, 480.0)])
    ]
    cases = [
        # (strategy representative, application)
        (StreamingStrategy.NO_ONOFF, Application.FIREFOX),
        (StreamingStrategy.LONG_ONOFF, Application.CHROME),
        (StreamingStrategy.SHORT_ONOFF, Application.INTERNET_EXPLORER),
    ]
    plans = [
        SessionPlan(video, SessionConfig(
            profile=RESEARCH,
            service=Service.YOUTUBE,
            application=application,
            container=Container.HTML5,
            capture_duration=scale.capture_duration,
            seed=seed + 101 * i,
            watch_fraction=watch_fraction,
            probe_period=1.0,
        ))
        for _strategy, application in cases
        for i, video in enumerate(videos)
    ]
    results = iter(run_sessions(plans))

    rows = []
    for strategy, application in cases:
        peaks, unused, downloaded = [], [], []
        for _video in videos:
            result = next(results)
            peaks.append(result.buffer_series.max()
                         if result.buffer_series else 0.0)
            unused.append(result.unused_bytes)
            downloaded.append(result.downloaded)
        n = len(videos)
        rows.append(
            Table2Row(
                strategy=strategy,
                engineering=COMPLEXITY[strategy],
                peak_buffer_bytes=sum(peaks) / n,
                unused_bytes=sum(unused) / n,
                downloaded=int(sum(downloaded) / n),
            )
        )
    return Table2Result(rows, watch_fraction)
