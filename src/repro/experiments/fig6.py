"""Figure 6 — long ON-OFF cycles (Chrome and Android on HTML5).

(a) A representative Chrome trace: the client lets its receive buffer fill
(window shrinks toward zero) and periodically drains multi-megabyte
blocks, producing OFF periods of tens of seconds.

(b) The block-size distribution for Chrome (all four networks) and
Android (Research): block sizes exceed 2.5 MB for most sessions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..analysis import Cdf, analyze_session, format_table, median
from ..simnet import PROFILE_ORDER, TimeSeries, get_profile
from ..streaming import (
    Application,
    Container,
    Service,
    SessionConfig,
    StreamingStrategy,
)
from ..workloads import make_dataset
from .common import MB, SMALL, Scale, SessionPlan, pick_videos, run_sessions


@dataclass
class Fig6Series:
    label: str
    block_sizes: List[int]
    max_off_duration: float

    @property
    def share_above_threshold(self) -> float:
        if not self.block_sizes:
            return 0.0
        return sum(1 for b in self.block_sizes if b > 2.5 * MB) / len(self.block_sizes)


@dataclass
class Fig6Result:
    trace_download: TimeSeries
    trace_window: TimeSeries
    trace_strategy: StreamingStrategy
    trace_max_off: float
    series: List[Fig6Series]

    def report(self) -> str:
        rows = []
        for s in self.series:
            med = median(s.block_sizes) / MB if s.block_sizes else 0.0
            rows.append((
                s.label,
                f"{med:.1f}",
                f"{s.share_above_threshold:.0%}",
                f"{s.max_off_duration:.0f}",
            ))
        table = format_table(
            ["Series", "MedianBlk(MB)", ">2.5MB", "MaxOFF(s)"],
            rows,
            title="Figure 6(b) — long ON-OFF block sizes",
        )
        head = (
            "Figure 6(a) — representative Chrome trace: "
            f"strategy={self.trace_strategy}, longest OFF="
            f"{self.trace_max_off:.0f}s, receive window min="
            f"{min(self.trace_window.values) / 1024:.0f} kB"
        )
        return head + "\n\n" + table


def _cohort_plans(videos, profile, application, scale, seed):
    return [
        SessionPlan(video, SessionConfig(
            profile=profile,
            service=Service.YOUTUBE,
            application=application,
            container=Container.HTML5,
            capture_duration=scale.capture_duration,
            seed=seed + 7 * i,
        ))
        for i, video in enumerate(videos)
    ]


def _collect(results):
    blocks: List[int] = []
    max_off = 0.0
    for result in results:
        analysis = analyze_session(result, use_true_rate=True)
        blocks.extend(analysis.block_sizes)
        offs = analysis.onoff.off_durations()
        if offs:
            max_off = max(max_off, max(offs))
    return blocks, max_off


def run(scale: Scale = SMALL, seed: int = 0) -> Fig6Result:
    html = make_dataset("YouHtml", seed=seed, scale=max(0.05, scale.catalog_scale))
    mob = make_dataset("YouMob", seed=seed, scale=max(0.05, scale.catalog_scale))
    html_videos = pick_videos(html, max(3, scale.sessions_per_cell // 2), seed,
                              min_size_bytes=30 * MB, max_size_bytes=250 * MB,
                              min_rate_bps=1.5e6)
    mob_videos = pick_videos(mob, max(3, scale.sessions_per_cell // 2), seed,
                             min_size_bytes=20 * MB, max_size_bytes=200 * MB,
                             min_rate_bps=1.5e6)

    # (a) representative Chrome trace in the Research network: a moderate
    # encoding rate makes the OFF periods tens of seconds long (the cycle
    # duration is pull_quantum / (k * e), so lower rates stretch the OFFs
    # toward the paper's ~60 s observation)
    from ..workloads import MBPS, Video

    rep_video = Video(
        video_id="fig6-representative", duration=600.0,
        encoding_rate_bps=0.9 * MBPS, resolution="360p", container="webm",
    )
    rep_config = SessionConfig(
        profile=get_profile("Research"),
        service=Service.YOUTUBE,
        application=Application.CHROME,
        container=Container.HTML5,
        capture_duration=max(240.0, scale.capture_duration),
        seed=seed,
    )
    cohorts = [
        ("Rsrch. (Cr)" if name == "Research" else name,
         _cohort_plans(html_videos, get_profile(name), Application.CHROME,
                       scale, seed))
        for name in PROFILE_ORDER
    ]
    cohorts.append(
        ("Rsrch. (And.)",
         _cohort_plans(mob_videos, get_profile("Research"),
                       Application.ANDROID, scale, seed)))

    plans = [SessionPlan(rep_video, rep_config)]
    for _label, cohort in cohorts:
        plans.extend(cohort)
    results = run_sessions(plans)

    rep = analyze_session(results[0], use_true_rate=True)
    rep_offs = rep.onoff.off_durations()

    series: List[Fig6Series] = []
    cursor = 1
    for label, cohort in cohorts:
        blocks, max_off = _collect(results[cursor:cursor + len(cohort)])
        series.append(Fig6Series(label, blocks, max_off))
        cursor += len(cohort)

    return Fig6Result(
        trace_download=rep.trace.cumulative_series(),
        trace_window=rep.trace.window_series,
        trace_strategy=rep.strategy,
        trace_max_off=max(rep_offs) if rep_offs else 0.0,
        series=series,
    )
