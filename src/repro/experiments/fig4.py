"""Figure 4 — steady state of Flash videos.

(a) Block sizes: the servers push 64 kB blocks; the dominant block size is
64 kB in every network, with loss-induced merging (larger) and splitting
(smaller) in the lossy networks.

(b) Accumulation ratio: ~1.25 in every network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..analysis import (
    Cdf,
    analyze_session,
    dominant_value,
    format_table,
    fraction_within,
    median,
)
from ..simnet import PROFILE_ORDER, get_profile
from ..streaming import (
    Application,
    Container,
    Service,
    SessionConfig,
)
from ..workloads import make_dataset
from .common import SMALL, Scale, SessionPlan, pick_videos, run_sessions

KB = 1024


@dataclass
class Fig4Network:
    network: str
    block_sizes: List[int]
    accumulation_ratios: List[float]

    @property
    def dominant_block(self) -> float:
        return dominant_value(self.block_sizes, bin_width=8 * KB) or 0.0

    @property
    def block_cdf(self) -> Cdf:
        return Cdf.from_samples(self.block_sizes)

    @property
    def accumulation_cdf(self) -> Cdf:
        return Cdf.from_samples(self.accumulation_ratios)


@dataclass
class Fig4Result:
    networks: List[Fig4Network]

    def report(self) -> str:
        rows = []
        for net in self.networks:
            share_64k = fraction_within(
                net.block_sizes, 56 * KB, 72 * KB) if net.block_sizes else 0.0
            rows.append((
                net.network,
                f"{net.dominant_block / KB:.0f}",
                f"{share_64k:.0%}",
                f"{median(net.block_sizes) / KB:.0f}" if net.block_sizes else "-",
                f"{median(net.accumulation_ratios):.2f}"
                if net.accumulation_ratios else "-",
            ))
        return format_table(
            ["Network", "DominantBlk(kB)", "near64kB", "MedianBlk(kB)",
             "MedianAccum"],
            rows,
            title=("Figure 4 — Flash steady state: 64 kB blocks, "
                   "accumulation ratio ~1.25"),
        )


def run(scale: Scale = SMALL, seed: int = 0) -> Fig4Result:
    catalog = make_dataset("YouFlash", seed=seed,
                           scale=max(0.02, scale.catalog_scale))
    videos = pick_videos(catalog, scale.sessions_per_cell, seed,
                         min_duration=150.0)
    plans = [
        SessionPlan(video, SessionConfig(
            profile=get_profile(name),
            service=Service.YOUTUBE,
            application=Application.CHROME,
            container=Container.FLASH,
            capture_duration=scale.capture_duration,
            seed=seed + 31 * i,
        ))
        for name in PROFILE_ORDER
        for i, video in enumerate(videos)
    ]
    results = iter(run_sessions(plans))

    networks = []
    for name in PROFILE_ORDER:
        blocks: List[int] = []
        ratios: List[float] = []
        for _video in videos:
            analysis = analyze_session(next(results))
            blocks.extend(analysis.block_sizes)
            ratio = analysis.accumulation_ratio
            if ratio is not None:
                ratios.append(ratio)
        networks.append(Fig4Network(name, blocks, ratios))
    return Fig4Result(networks)
