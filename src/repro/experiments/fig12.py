"""Figure 12 — Netflix block sizes depend on the application.

PCs and the iPad fetch blocks mostly below 2.5 MB (short cycles, but
larger than YouTube's 64/256 kB blocks); the native Android application
fetches multi-megabyte blocks (long cycles).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..analysis import Cdf, analyze_session, format_table, median
from ..simnet import ACADEMIC, HOME, NetworkProfile
from ..streaming import Application, Service, SessionConfig
from ..workloads import make_netmob, make_netpc
from .common import MB, SMALL, Scale, SessionPlan, pick_videos, run_sessions

KB = 1024


@dataclass
class Fig12Series:
    label: str
    block_sizes: List[int]

    @property
    def cdf(self) -> Cdf:
        return Cdf.from_samples(self.block_sizes)

    @property
    def share_below_threshold(self) -> float:
        if not self.block_sizes:
            return 0.0
        return sum(1 for b in self.block_sizes
                   if b < 2.5 * MB) / len(self.block_sizes)


@dataclass
class Fig12Result:
    series: List[Fig12Series]

    def report(self) -> str:
        rows = []
        for s in self.series:
            rows.append((
                s.label,
                f"{median(s.block_sizes) / MB:.2f}" if s.block_sizes else "-",
                f"{s.share_below_threshold:.0%}",
                f"{s.cdf.quantile(0.9) / MB:.1f}" if s.block_sizes else "-",
            ))
        return format_table(
            ["Client", "MedianBlk(MB)", "<2.5MB", "p90(MB)"],
            rows,
            title="Figure 12 — Netflix block sizes per application",
        )


def _series_plans(videos, profile: NetworkProfile,
                  application: Application, scale: Scale, seed: int):
    return [
        SessionPlan(video, SessionConfig(
            profile=profile,
            service=Service.NETFLIX,
            application=application,
            capture_duration=scale.capture_duration,
            seed=seed + 11 * i,
        ))
        for i, video in enumerate(videos)
    ]


def _series(label: str, results) -> Fig12Series:
    blocks: List[int] = []
    for result in results:
        analysis = analyze_session(result, use_true_rate=True)
        blocks.extend(analysis.block_sizes)
    return Fig12Series(label, blocks)


def run(scale: Scale = SMALL, seed: int = 0) -> Fig12Result:
    netpc = make_netpc(seed=seed, scale=max(0.25, scale.catalog_scale))
    netmob = make_netmob(seed=seed, scale=max(0.25, scale.catalog_scale),
                         netpc=netpc)
    n = max(3, scale.sessions_per_cell // 2)
    pc_videos = pick_videos(netpc, n, seed, min_duration=1800.0)
    mob_videos = pick_videos(netmob, n, seed, min_duration=1800.0)
    cases = [
        ("PC Acad.", pc_videos, ACADEMIC, Application.FIREFOX),
        ("PC Home", pc_videos, HOME, Application.FIREFOX),
        ("iPad Acad.", mob_videos, ACADEMIC, Application.IOS),
        ("Android Acad.", mob_videos, ACADEMIC, Application.ANDROID),
    ]
    plans = []
    for _label, videos, profile, application in cases:
        plans.extend(_series_plans(videos, profile, application, scale, seed))
    results = iter(run_sessions(plans))
    return Fig12Result([
        _series(label, [next(results) for _ in videos])
        for label, videos, _profile, _application in cases
    ])
