"""Shared scaffolding for the per-figure/per-table experiments.

Every experiment exposes ``run(scale=SMALL, seed=...) -> <Result>`` and the
result renders itself through ``report()``.  ``Scale`` trades fidelity for
runtime: ``SMALL`` (the default used by tests and benchmarks) streams a few
videos per cell with shortened captures; ``FULL`` approaches the paper's
session counts and the full 180 s captures.

Experiments do not stream sessions in hand-rolled serial loops; they build
:class:`~repro.runner.SessionPlan` batches and hand them to
:func:`run_sessions` (re-exported here from :mod:`repro.runner`), which
fans them out over a worker pool and memoizes completed results in a
content-addressed cache.  Parallelism and caching are ambient — installed
by the CLI or a test via :func:`~repro.runner.engine_options` — so
experiment code stays a pure description of *what* to measure.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..runner import (
    CampaignJournal,
    FailureReport,
    RetryBudget,
    RunStats,
    SessionPlan,
    SupervisionPolicy,
    engine_options,
    run_sessions,
    run_tasks,
)
from ..simnet.rng import derive_seed
from ..workloads.catalog import Catalog
from ..workloads.video import Video

__all__ = [
    "CampaignJournal",
    "FULL",
    "FailureReport",
    "MB",
    "MEDIUM",
    "RetryBudget",
    "RunStats",
    "SCALES",
    "SMALL",
    "Scale",
    "SessionPlan",
    "SupervisionPolicy",
    "engine_options",
    "pick_videos",
    "run_sessions",
    "run_tasks",
]

MB = 1024 * 1024


@dataclass(frozen=True)
class Scale:
    """Knobs controlling experiment size."""

    name: str
    sessions_per_cell: int        # videos streamed per (dataset, network)
    capture_duration: float       # seconds of capture per session
    catalog_scale: float          # dataset size multiplier
    mc_horizon: float             # Monte-Carlo horizon for the model benches


SMALL = Scale(
    name="small",
    sessions_per_cell=5,
    capture_duration=120.0,
    catalog_scale=0.02,
    mc_horizon=6000.0,
)

MEDIUM = Scale(
    name="medium",
    sessions_per_cell=12,
    capture_duration=150.0,
    catalog_scale=0.05,
    mc_horizon=15000.0,
)

FULL = Scale(
    name="full",
    sessions_per_cell=40,
    capture_duration=180.0,
    catalog_scale=1.0,
    mc_horizon=60000.0,
)

SCALES = {scale.name: scale for scale in (SMALL, MEDIUM, FULL)}


def pick_videos(
    catalog: Catalog,
    n: int,
    seed: int,
    *,
    min_size_bytes: int = 0,
    max_size_bytes: Optional[int] = None,
    min_duration: float = 0.0,
    min_rate_bps: float = 0.0,
) -> List[Video]:
    """Sample ``n`` videos satisfying size/duration/rate constraints.

    Experiments that characterize the *steady state* need videos large
    enough to outlive the buffering phase — and, for the long-cycle
    players, encoding rates high enough that several multi-megabyte cycles
    fit in one capture.  Bulk-transfer experiments cap sizes to keep
    simulated packet counts tractable.
    """
    rng = random.Random(derive_seed(seed, f"pick:{catalog.name}"))
    eligible = [
        v for v in catalog
        if v.size_bytes >= min_size_bytes
        and (max_size_bytes is None or v.size_bytes <= max_size_bytes)
        and v.duration >= min_duration
        and v.encoding_rate_bps >= min_rate_bps
    ]
    if not eligible:
        raise ValueError(
            f"no videos in {catalog.name} satisfy the constraints "
            f"(min={min_size_bytes}, max={max_size_bytes}, "
            f"min_duration={min_duration}, min_rate={min_rate_bps})"
        )
    if n >= len(eligible):
        return list(eligible)
    return rng.sample(eligible, n)
