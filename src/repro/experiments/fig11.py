"""Figure 11 — Netflix buffering amounts.

Netflix prefetches fragments of multiple encoding rates during buffering,
so the buffering amounts are an order of magnitude larger than YouTube's:
~50 MB on PCs, ~10 MB on the iPad (a rendition subset), ~40 MB on Android.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..analysis import Cdf, analyze_session, format_table
from ..simnet import ACADEMIC, HOME, NetworkProfile
from ..streaming import Application, Service, SessionConfig
from ..workloads import make_netmob, make_netpc
from .common import MB, SMALL, Scale, SessionPlan, pick_videos, run_sessions


@dataclass
class Fig11Series:
    label: str
    buffering_bytes: List[float]
    renditions_observed: List[int]   # ladder rungs touched, per session

    @property
    def cdf(self) -> Cdf:
        return Cdf.from_samples(self.buffering_bytes)

    @property
    def typical_renditions(self) -> int:
        ordered = sorted(self.renditions_observed)
        return ordered[len(ordered) // 2] if ordered else 0


@dataclass
class Fig11Result:
    series: List[Fig11Series]

    def report(self) -> str:
        rows = []
        for s in self.series:
            cdf = s.cdf
            rows.append((
                s.label,
                f"{cdf.median / MB:.0f}",
                f"{cdf.quantile(0.25) / MB:.0f}",
                f"{cdf.quantile(0.75) / MB:.0f}",
                s.typical_renditions,
            ))
        return format_table(
            ["Client", "MedianBuf(MB)", "p25(MB)", "p75(MB)", "Renditions"],
            rows,
            title=("Figure 11 — Netflix buffering amounts "
                   "(multi-bitrate prefetch; renditions inferred from the "
                   "traces' Content-Range totals)"),
        )


def _series_plans(videos, profile: NetworkProfile,
                  application: Application, scale: Scale, seed: int):
    return [
        SessionPlan(video, SessionConfig(
            profile=profile,
            service=Service.NETFLIX,
            application=application,
            capture_duration=scale.capture_duration,
            seed=seed + 5 * i,
        ))
        for i, video in enumerate(videos)
    ]


def _series(label: str, videos, results) -> Fig11Series:
    from ..analysis import detect_renditions

    amounts = []
    renditions = []
    for video, result in zip(videos, results):
        analysis = analyze_session(result, use_true_rate=True)
        amounts.append(float(analysis.buffering_bytes))
        renditions.append(
            detect_renditions(analysis.trace, duration=video.duration).count)
    return Fig11Series(label, amounts, renditions)


def run(scale: Scale = SMALL, seed: int = 0) -> Fig11Result:
    netpc = make_netpc(seed=seed, scale=max(0.25, scale.catalog_scale))
    netmob = make_netmob(seed=seed, scale=max(0.25, scale.catalog_scale),
                         netpc=netpc)
    n = max(3, scale.sessions_per_cell // 2)
    pc_videos = pick_videos(netpc, n, seed, min_duration=1800.0)
    mob_videos = pick_videos(netmob, n, seed, min_duration=1800.0)
    cases = [
        ("PC Acad.", pc_videos, ACADEMIC, Application.FIREFOX),
        ("PC Home", pc_videos, HOME, Application.FIREFOX),
        ("iPad Acad.", mob_videos, ACADEMIC, Application.IOS),
        ("Android Acad.", mob_videos, ACADEMIC, Application.ANDROID),
    ]
    plans = []
    for _label, videos, profile, application in cases:
        plans.extend(_series_plans(videos, profile, application, scale, seed))
    results = iter(run_sessions(plans))
    return Fig11Result([
        _series(label, videos, [next(results) for _ in videos])
        for label, videos, _profile, _application in cases
    ])
