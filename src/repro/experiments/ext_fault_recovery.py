"""Extension — streaming resilience under injected access-link outages.

The paper measures streaming over clean university and residential links;
a production measurement fleet additionally meets link flaps, server
hiccups and connection resets.  This experiment sweeps *outage duration*
against *retry policy* for a Netflix (native iPad) session and reports
the QoE and recovery numbers the resilience layer produces: rebuffering,
recovery time, reconnect attempts, and the bytes a non-resuming client
re-downloads — plus the Section 5.1.1 block-merging artifact, quantified
against a clean run of the same session.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..analysis import format_table, quantify_block_merging
from ..analysis.resilience import recovery_time
from ..simnet import FaultSchedule, RESIDENCE
from ..simnet.rng import derive_seed
from ..streaming import (
    DEFAULT_RETRY,
    RESTART_RETRY,
    Application,
    RetryPolicy,
    Service,
    SessionConfig,
    SessionResult,
)
from ..workloads import MBPS, Video
from .common import SMALL, Scale, SessionPlan, run_sessions

#: The access link, without its background random loss: the injected
#: outage is the only perturbation, so every row difference is the fault.
PROFILE = RESIDENCE.with_loss(0.0)

#: Outage start: during the buffering phase, where the player buffer is
#: still shallow enough for long outages to starve playback.
OUTAGE_AT_S = 6.0

#: Outage durations swept (seconds).  2 s: TCP's own retransmission
#: timers ride it out; 10 s: the stall watchdog must reconnect; 20 s:
#: playback additionally starves and rebuffers.
OUTAGE_DURATIONS_S = (2.0, 10.0, 20.0)

#: The two recovery strategies compared.
POLICIES: Tuple[Tuple[str, RetryPolicy], ...] = (
    ("resume", DEFAULT_RETRY),     # Range-resume from the last byte
    ("restart", RESTART_RETRY),    # re-request the block from scratch
)


def _test_video() -> Video:
    return Video(
        video_id="fault-recovery",
        duration=90.0,
        encoding_rate_bps=1.0 * MBPS,
        resolution="480p",
        container="silverlight",
        variants=(("235p", 0.5 * MBPS), ("480p", 1.0 * MBPS),
                  ("720p", 1.75 * MBPS)),
    )


@dataclass
class FaultRecoveryRow:
    outage_s: float
    policy: str
    completed: bool               # delivered what the clean run delivered
    failed: bool
    rebuffer_count: int
    rebuffer_ratio: float
    recovery_s: Optional[float]
    retries: int
    wasted_mb: float


@dataclass
class FaultRecoveryResult:
    rows: List[FaultRecoveryRow]
    clean_cycles: int
    worst_faulted_cycles: int

    def report(self) -> str:
        rows = [
            (
                f"{r.outage_s:.0f}",
                r.policy,
                "yes" if r.completed else ("FAILED" if r.failed else "no"),
                r.rebuffer_count,
                f"{r.rebuffer_ratio:.2%}",
                "-" if r.recovery_s is None else f"{r.recovery_s:.1f}",
                r.retries,
                f"{r.wasted_mb:.2f}",
            )
            for r in self.rows
        ]
        table = format_table(
            ["Outage(s)", "Policy", "Done", "Rebuf", "RebufRatio",
             "Recovery(s)", "Retries", "Wasted(MB)"],
            rows,
            title=("Extension — Netflix/iPad session vs access-link outage "
                   f"at t={OUTAGE_AT_S:.0f}s (stall watchdog, backoff "
                   "reconnect, Range resume)"),
        )
        return table + (
            "\n\nResuming with Range re-downloads nothing; restarting the "
            "block re-downloads everything received before the cut.  The "
            "outage also distorts the ON-OFF structure the analysis sees: "
            f"{self.clean_cycles} cycles clean vs {self.worst_faulted_cycles} "
            "under the longest outage (the Section 5.1.1 class of "
            "measurement artifact, reproduced under injected faults)."
        )


def _plan(video: Video, capture: float, seed: int,
          retry_policy: Optional[RetryPolicy],
          faults: Optional[FaultSchedule]) -> SessionPlan:
    return SessionPlan(video, SessionConfig(
        profile=PROFILE,
        service=Service.NETFLIX,
        application=Application.IOS,
        capture_duration=capture,
        seed=seed,
        retry_policy=retry_policy,
        faults=faults,
    ))


def run(scale: Scale = SMALL, seed: int = 0) -> FaultRecoveryResult:
    video = _test_video()
    capture = scale.capture_duration
    sweep = [(duration, name, policy)
             for duration in OUTAGE_DURATIONS_S
             for name, policy in POLICIES]
    plans = [_plan(video, capture, derive_seed(seed, "clean"),
                   DEFAULT_RETRY, None)]
    plans += [
        _plan(video, capture, derive_seed(seed, f"{name}:{duration}"),
              policy, FaultSchedule().outage(OUTAGE_AT_S, duration))
        for duration, name, policy in sweep
    ]
    results = run_sessions(plans)
    clean = results[0]

    rows: List[FaultRecoveryRow] = []
    worst: Optional[SessionResult] = None
    for (duration, name, _policy), result in zip(sweep, results[1:]):
        rows.append(FaultRecoveryRow(
            outage_s=duration,
            policy=name,
            completed=(not result.failed
                       and result.downloaded >= 0.99 * clean.downloaded),
            failed=result.failed,
            rebuffer_count=result.rebuffer_count,
            rebuffer_ratio=result.rebuffer_ratio,
            recovery_s=recovery_time(result),
            retries=result.retry_count,
            wasted_mb=result.wasted_redownloaded_bytes / 1e6,
        ))
        if name == "resume" and duration == max(OUTAGE_DURATIONS_S):
            worst = result

    merging = quantify_block_merging(clean, worst) if worst is not None else None
    return FaultRecoveryResult(
        rows=rows,
        clean_cycles=merging.clean_cycles if merging else 0,
        worst_faulted_cycles=merging.faulted_cycles if merging else 0,
    )
