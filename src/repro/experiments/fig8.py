"""Figure 8 — no ON-OFF cycles: HD (and Firefox/HTML5) are bulk transfers.

The download rate is set by the end-to-end available bandwidth, not the
encoding rate: the two are uncorrelated.  The paper additionally verifies
with videos longer than 1200 s that no steady state ever appears — the
absence of cycles is not just a large buffering phase.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..analysis import analyze_session, correlation, format_table
from ..simnet import RESEARCH
from ..streaming import (
    Application,
    Container,
    Service,
    SessionConfig,
    StreamingStrategy,
)
from ..workloads import MBPS, Video, make_dataset
from .common import MB, SMALL, Scale, SessionPlan, pick_videos, run_sessions


@dataclass
class Fig8Point:
    encoding_rate_bps: float
    download_rate_bps: float


@dataclass
class Fig8Result:
    points: List[Fig8Point]
    rate_correlation: float
    long_videos_checked: int
    long_videos_without_steady_state: int

    def report(self) -> str:
        rows = [
            (f"{p.encoding_rate_bps / 1e6:.2f}",
             f"{p.download_rate_bps / 1e6:.1f}")
            for p in sorted(self.points, key=lambda p: p.encoding_rate_bps)
        ]
        table = format_table(
            ["EncodingRate(Mbps)", "DownloadRate(Mbps)"],
            rows,
            title="Figure 8 — no ON-OFF cycles (HD over Flash, Research)",
        )
        return (
            table
            + f"\n\ncorr(encoding rate, download rate) = "
              f"{self.rate_correlation:.2f}  (paper: uncorrelated)"
            + f"\nlong videos (>1200 s) without a steady state: "
              f"{self.long_videos_without_steady_state}/"
              f"{self.long_videos_checked}"
        )


def run(scale: Scale = SMALL, seed: int = 0) -> Fig8Result:
    catalog = make_dataset("YouHD", seed=seed,
                           scale=max(0.02, scale.catalog_scale))
    videos = pick_videos(catalog, scale.sessions_per_cell, seed,
                         min_size_bytes=5 * MB, max_size_bytes=120 * MB)
    hd_plans = [
        SessionPlan(video, SessionConfig(
            profile=RESEARCH,
            service=Service.YOUTUBE,
            application=Application.FIREFOX,
            container=Container.FLASH_HD,
            capture_duration=min(scale.capture_duration, 90.0),
            seed=seed + 3 * i,
        ))
        for i, video in enumerate(videos)
    ]

    # the >1200 s spot check (scaled down: a few long synthetic HD videos;
    # modest rates keep the bulk transfer tractable)
    long_count = 3 if scale.sessions_per_cell <= 8 else 5
    long_plans = [
        SessionPlan(
            Video(
                video_id=f"fig8-long-{i}",
                duration=1300.0 + 100.0 * i,
                encoding_rate_bps=(1.0 + 0.4 * i) * MBPS,
                resolution="720p",
                container="flv",
            ),
            SessionConfig(
                profile=RESEARCH,
                service=Service.YOUTUBE,
                application=Application.CHROME,
                container=Container.FLASH_HD,
                capture_duration=min(scale.capture_duration, 60.0),
                seed=seed + 100 + i,
            ))
        for i in range(long_count)
    ]
    results = run_sessions(hd_plans + long_plans)

    points: List[Fig8Point] = []
    for video, result in zip(videos, results[:len(videos)]):
        analysis = analyze_session(result, use_true_rate=True)
        points.append(Fig8Point(
            video.encoding_rate_bps, analysis.trace.download_rate_bps()))
    corr = (
        correlation([p.encoding_rate_bps for p in points],
                    [p.download_rate_bps for p in points])
        if len(points) > 1 else 0.0
    )

    no_steady = 0
    for result in results[len(videos):]:
        analysis = analyze_session(result, use_true_rate=True)
        if analysis.strategy is StreamingStrategy.NO_ONOFF:
            no_steady += 1
    return Fig8Result(
        points=points,
        rate_correlation=corr,
        long_videos_checked=long_count,
        long_videos_without_steady_state=no_steady,
    )
