"""Figure 9 — the missing ACK clock.

For each application, the CDF of the amount of data received back-to-back
within the first RTT of the steady-state ON periods.  Because none of the
sources reset their congestion window after the OFF periods (contrary to
RFC 5681 §4.1), each curve saturates near min(cwnd, block size):

* Flash: the whole 64 kB block arrives in one burst;
* IE/HTML5: bursts up to the 256 kB pull;
* Chrome/Android/iPad: multi-hundred-kB bursts bounded by the window.

The companion ablation re-runs Flash with the RFC 5681 idle reset enabled,
restoring the ACK clock (bursts collapse to the initial window).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..analysis import Cdf, analyze_session, format_table, median
from ..simnet import RESEARCH
from ..streaming import (
    Application,
    Container,
    Service,
    SessionConfig,
)
from ..workloads import MBPS, Video
from .common import MB, SMALL, Scale, SessionPlan, run_sessions

KB = 1024


@dataclass
class Fig9Curve:
    label: str
    samples: List[int]        # bytes in the first RTT of each ON period

    @property
    def cdf(self) -> Cdf:
        return Cdf.from_samples(self.samples)


@dataclass
class Fig9Result:
    curves: List[Fig9Curve]
    flash_no_reset: Fig9Curve          # low-rate Flash, stock behaviour
    flash_with_idle_reset: Fig9Curve   # same video, RFC 5681 reset enabled
    init_window_bytes: int

    def report(self) -> str:
        rows = []
        for curve in self.curves:
            cdf = curve.cdf
            rows.append((
                curve.label,
                f"{cdf.median / KB:.0f}",
                f"{cdf.quantile(0.9) / KB:.0f}",
                f"{cdf.at(self.init_window_bytes):.0%}",
            ))
        table = format_table(
            ["Application", "MedianBurst(kB)", "p90(kB)", "<=initcwnd"],
            rows,
            title=("Figure 9 — bytes back-to-back in the first RTT of ON "
                   "periods (Research)"),
        )
        with_reset = self.flash_with_idle_reset.cdf.median
        without = self.flash_no_reset.cdf.median
        return (
            table
            + "\n\nAblation (0.25 Mbps Flash, OFF ~1.7 s >= RTO): median "
              f"first-RTT burst {without / KB:.0f} kB stock vs "
              f"{with_reset / KB:.0f} kB with the RFC 5681 idle reset — "
              "the reset restores the ACK clock."
        )


def _plan(video, application, container, scale, seed,
          reset_idle=False) -> SessionPlan:
    return SessionPlan(video, SessionConfig(
        profile=RESEARCH,
        service=Service.YOUTUBE,
        application=application,
        container=container,
        capture_duration=scale.capture_duration,
        seed=seed,
        server_reset_cwnd_after_idle=reset_idle,
    ))


def _session_samples(result) -> List[int]:
    analysis = analyze_session(result, use_true_rate=True)
    # multi-connection players (iPad) show their ACK clock at connection
    # starts, so those ON periods are included in the Figure 9 metric
    from ..analysis import ackclock_samples

    return ackclock_samples(analysis.trace, include_connection_starts=True)


def run(scale: Scale = SMALL, seed: int = 0) -> Fig9Result:
    flash_video = Video(
        video_id="fig9-flash", duration=500.0, encoding_rate_bps=1.0 * MBPS,
        resolution="360p", container="flv",
    )
    webm_video = Video(
        video_id="fig9-webm", duration=400.0, encoding_rate_bps=2.2 * MBPS,
        resolution="360p", container="webm",
        variants=(("240p", 0.8 * MBPS), ("720p", 4.0 * MBPS)),
    )
    cases = [
        ("Flash", flash_video, Application.FIREFOX, Container.FLASH),
        ("Int. Explorer", webm_video, Application.INTERNET_EXPLORER,
         Container.HTML5),
        ("Chrome", webm_video, Application.CHROME, Container.HTML5),
        ("Android", webm_video, Application.ANDROID, Container.HTML5),
        ("iPad", webm_video, Application.IOS, Container.HTML5),
    ]
    # Ablation: RFC 5681 only resets after idling a full RTO (>= 1 s), so
    # use a low-rate video whose OFF periods comfortably exceed it (64 kB
    # at 1.25x 0.25 Mbps cycles every ~1.7 s, leaving ~1.5 s of true idle
    # after the delayed ACKs drain)
    slow_flash = Video(
        video_id="fig9-slow-flash", duration=1400.0,
        encoding_rate_bps=0.25 * MBPS, resolution="240p", container="flv",
    )
    plans = [
        _plan(video, application, container, scale, seed)
        for _label, video, application, container in cases
    ] + [
        _plan(slow_flash, Application.FIREFOX, Container.FLASH, scale, seed),
        _plan(slow_flash, Application.FIREFOX, Container.FLASH, scale, seed,
              reset_idle=True),
    ]
    results = run_sessions(plans)

    curves = []
    for (label, *_), result in zip(cases, results):
        samples = _session_samples(result)
        curves.append(Fig9Curve(label, samples or [0]))
    stock_samples = _session_samples(results[-2])
    reset_samples = _session_samples(results[-1])
    from ..tcp.constants import DEFAULT_INIT_CWND_SEGMENTS, DEFAULT_MSS

    return Fig9Result(
        curves=curves,
        flash_no_reset=Fig9Curve("Flash 0.4Mbps", stock_samples or [0]),
        flash_with_idle_reset=Fig9Curve("Flash+reset", reset_samples or [0]),
        init_window_bytes=DEFAULT_INIT_CWND_SEGMENTS * DEFAULT_MSS,
    )
