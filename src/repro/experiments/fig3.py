"""Figure 3 — the amount downloaded during the buffering phase.

(a) Flash videos across the four networks: YouTube pushes ~40 seconds of
playback, so buffering *playback time* has a steep CDF around 40 s and the
buffering amount correlates strongly with the encoding rate (paper: 0.85).
Lossy networks (Residence, Academic) measure smaller amounts — the
first-OFF heuristic is disturbed by retransmission timeouts.

(b) HTML5 on Internet Explorer: the buffering amount is a 10-15 MB byte
target independent of the rate, so the correlation is weak (paper: 0.41).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..analysis import Cdf, analyze_session, correlation, format_table, median
from ..simnet import PROFILE_ORDER, get_profile
from ..streaming import (
    Application,
    Container,
    Service,
    SessionConfig,
)
from ..workloads import make_dataset
from .common import MB, SMALL, Scale, SessionPlan, pick_videos, run_sessions


@dataclass
class Fig3aNetwork:
    network: str
    playback_times: List[float]          # buffering amount / encoding rate
    correlation_rate_bytes: float
    retransmission_median: float

    @property
    def cdf(self) -> Cdf:
        return Cdf.from_samples(self.playback_times)


@dataclass
class Fig3bPoint:
    encoding_rate_bps: float
    buffering_bytes: float


@dataclass
class Fig3Result:
    networks: List[Fig3aNetwork]
    html5_points: List[Fig3bPoint]
    html5_correlation: float

    def report(self) -> str:
        rows = []
        for net in self.networks:
            cdf = net.cdf
            rows.append((
                net.network,
                f"{cdf.median:.1f}",
                f"{cdf.quantile(0.25):.1f}",
                f"{cdf.quantile(0.75):.1f}",
                f"{net.correlation_rate_bytes:.2f}",
                f"{net.retransmission_median * 100:.2f}%",
            ))
        table = format_table(
            ["Network", "Median(s)", "p25(s)", "p75(s)", "corr(e,B)", "retx"],
            rows,
            title="Figure 3(a) — Flash buffering amount as playback time",
        )
        mb = [p.buffering_bytes / MB for p in self.html5_points]
        lines = [
            table,
            "",
            "Figure 3(b) — HTML5/IE buffering amount vs encoding rate",
            f"  buffering range: {min(mb):.1f} - {max(mb):.1f} MB "
            f"(median {median(mb):.1f} MB)",
            f"  corr(encoding rate, buffering bytes) = "
            f"{self.html5_correlation:.2f}  (paper: 0.41, weak)",
        ]
        return "\n".join(lines)


def run(scale: Scale = SMALL, seed: int = 0) -> Fig3Result:
    flash_catalog = make_dataset("YouFlash", seed=seed,
                                 scale=max(0.02, scale.catalog_scale))
    # videos must outlive the ~40 s buffering push to show a steady state
    flash_videos = pick_videos(flash_catalog, scale.sessions_per_cell, seed,
                               min_duration=150.0)

    html_catalog = make_dataset("YouHtml", seed=seed,
                                scale=max(0.05, scale.catalog_scale))
    html_videos = pick_videos(html_catalog, scale.sessions_per_cell, seed,
                              min_size_bytes=30 * MB, max_size_bytes=250 * MB)

    # one batch: 4 networks x Flash videos, then the HTML5/IE sessions
    plans = [
        SessionPlan(video, SessionConfig(
            profile=get_profile(name),
            service=Service.YOUTUBE,
            application=Application.FIREFOX,
            container=Container.FLASH,
            capture_duration=scale.capture_duration,
            seed=seed + i,
        ))
        for name in PROFILE_ORDER
        for i, video in enumerate(flash_videos)
    ] + [
        SessionPlan(video, SessionConfig(
            profile=get_profile("Research"),
            service=Service.YOUTUBE,
            application=Application.INTERNET_EXPLORER,
            container=Container.HTML5,
            capture_duration=scale.capture_duration,
            seed=seed + i,
        ))
        for i, video in enumerate(html_videos)
    ]
    results = run_sessions(plans)

    networks = []
    per_network = len(flash_videos)
    for n, name in enumerate(PROFILE_ORDER):
        playback_times: List[float] = []
        rates: List[float] = []
        amounts: List[float] = []
        retx: List[float] = []
        for video, result in zip(
                flash_videos,
                results[n * per_network:(n + 1) * per_network]):
            analysis = analyze_session(result)  # rate from the FLV header
            if analysis.buffering_playback_s is None:
                continue
            playback_times.append(analysis.buffering_playback_s)
            rates.append(video.encoding_rate_bps)
            amounts.append(float(analysis.buffering_bytes))
            retx.append(analysis.retransmission_rate)
        networks.append(
            Fig3aNetwork(
                network=name,
                playback_times=playback_times,
                correlation_rate_bytes=(
                    correlation(rates, amounts) if len(rates) > 1 else 0.0
                ),
                retransmission_median=median(retx) if retx else 0.0,
            )
        )

    points: List[Fig3bPoint] = []
    for video, result in zip(html_videos,
                             results[len(PROFILE_ORDER) * per_network:]):
        analysis = analyze_session(result, use_true_rate=True)
        points.append(Fig3bPoint(video.encoding_rate_bps,
                                 float(analysis.buffering_bytes)))
    html5_corr = (
        correlation([p.encoding_rate_bps for p in points],
                    [p.buffering_bytes for p in points])
        if len(points) > 1 else 0.0
    )
    return Fig3Result(networks=networks, html5_points=points,
                      html5_correlation=html5_corr)
