"""Extension — the paper's stated future work (Section 8).

    "However, we did not consider the impact of the three different
     streaming strategies on the network loss rate. [...] It is anyway a
     possible area of improvement."

This experiment runs several *concurrent* streaming sessions over one
shared bottleneck and measures what each strategy does to the queue:
drop rate, retransmissions, and the buffer occupancy the bursts need.
The mechanism under test is exactly the paper's Section 5.1.5 concern —
without an ACK clock, every ON period opens with a `min(cwnd, block)`
burst, and many unsynchronized bursts meeting at a queue lose packets
that smooth (ack-clocked) traffic would not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..analysis import format_table
from ..simnet import Network, NetworkProfile, build_client_server
from ..simnet.rng import derive_seed
from ..streaming import (
    Application,
    Container,
    Service,
    StreamingStrategy,
    VideoServer,
)
from ..streaming.client import GreedyPlayer, PullPlayer
from ..streaming.params import (
    CHROME_HTML5,
    FIREFOX_HTML5,
    IE_HTML5,
    BULK_SERVER,
    FLASH_SERVER,
)
from ..tcp import TcpConfig
from ..workloads import MBPS, Video
from .common import MB, SMALL, Scale, run_tasks

#: A moderately sized shared bottleneck: enough for the aggregate average
#: rate, not for synchronized bursts.
BOTTLENECK = NetworkProfile(
    name="SharedBottleneck",
    down_bps=25e6,
    up_bps=25e6,
    rtt=0.03,
    loss_down=0.0,            # only congestion (queue) losses
    buffer_bytes=192 * 1024,  # a shallow queue makes bursts visible
)


@dataclass
class LossImpactRow:
    strategy: StreamingStrategy
    sessions: int
    queue_drop_rate: float        # drops / packets offered at the queue
    retransmission_share: float   # retransmitted / payload bytes on the wire
    delivered_mb: float           # unique bytes delivered to the players
    peak_backlog_share: float     # max queue backlog / buffer size


@dataclass
class LossImpactResult:
    rows: List[LossImpactRow]
    bottleneck: NetworkProfile

    def report(self) -> str:
        rows = [
            (
                str(r.strategy),
                r.sessions,
                f"{r.queue_drop_rate:.3%}",
                f"{r.retransmission_share:.3%}",
                f"{r.delivered_mb:.0f}",
                f"{r.peak_backlog_share:.0%}",
            )
            for r in self.rows
        ]
        table = format_table(
            ["Strategy", "Sessions", "QueueDrops", "Retransmissions",
             "Delivered(MB)", "PeakQueue"],
            rows,
            title=("Extension — strategy impact on congestion at a shared "
                   f"{self.bottleneck.down_bps / 1e6:.0f} Mbps bottleneck "
                   "(the paper's stated future work)"),
        )
        return table + (
            "\n\nShort cycles fire a non-ack-clocked min(cwnd, block) burst "
            "every couple of seconds per session; with many unsynchronized "
            "sessions these bursts collide at the queue far more often than "
            "either the rare large bursts of long cycles or ack-clocked "
            "bulk transfers — confirming the loss-rate concern of "
            "Section 5.1.5."
        )


def _run_cohort(strategy: StreamingStrategy, n_sessions: int,
                capture: float, seed: int) -> LossImpactRow:
    """Run ``n_sessions`` concurrent same-strategy sessions on one path."""
    from ..analysis import build_download_trace
    from ..pcap import TraceCapture
    from ..simnet import CLIENT_IP, SERVER_IP

    net, client_host, server_host, path = build_client_server(
        BOTTLENECK, seed=derive_seed(seed, f"ext:{strategy}"))
    rng = net.rng.stream("players")
    sniffer = TraceCapture(keep_payload=False).attach(path)

    if strategy is StreamingStrategy.SHORT_ONOFF:
        container, policy_override = "flv", FLASH_SERVER
    else:
        container, policy_override = "webm", BULK_SERVER

    videos = {}
    players = []
    for i in range(n_sessions):
        video = Video(
            video_id=f"v{i}",
            duration=150.0 + 20.0 * (i % 4),
            encoding_rate_bps=(1.0 + 0.25 * (i % 4)) * MBPS,
            resolution="360p",
            container=container,
        )
        videos[video.video_id] = video
    server = VideoServer(server_host, net.scheduler, videos,
                         policy_override=policy_override,
                         tcp_config=TcpConfig(recv_buffer=128 * 1024))

    peak_backlog = {"v": 0.0}

    def watch_queue() -> None:
        peak_backlog["v"] = max(peak_backlog["v"],
                                path.forward.backlog_bytes())
        net.scheduler.after(0.05, watch_queue, label="queue-probe")

    net.scheduler.after(0.0, watch_queue, label="queue-probe")

    # sessions arrive over the capture window (Poisson-like staggering):
    # bulk sessions then finish and go silent, the throttled strategies
    # keep cycling — the population-level pattern each strategy produces
    t_arrival = 0.0
    for i, video in enumerate(videos.values()):
        if strategy is StreamingStrategy.LONG_ONOFF:
            player = PullPlayer(client_host, net.scheduler, server_host.ip,
                                video, policy=CHROME_HTML5, rng=rng)
        else:
            # No ON-OFF: bulk server; Short: Flash-paced server.  The
            # client reads greedily in both cases.
            player = GreedyPlayer(client_host, net.scheduler, server_host.ip,
                                  video, policy=FIREFOX_HTML5, rng=rng)
        net.scheduler.at(t_arrival, player.start, label="player-start")
        t_arrival += rng.expovariate(1.0 / (capture / (n_sessions + 2)))
        players.append(player)

    net.run_until(capture)
    stats = path.forward.stats
    offered = stats.packets_in
    drops = stats.packets_dropped_queue
    delivered = sum(p.downloaded for p in players)
    trace = build_download_trace(sniffer.records, CLIENT_IP, SERVER_IP)
    return LossImpactRow(
        strategy=strategy,
        sessions=n_sessions,
        queue_drop_rate=drops / offered if offered else 0.0,
        retransmission_share=trace.retransmission_rate,
        delivered_mb=delivered / 1e6,
        peak_backlog_share=peak_backlog["v"] / BOTTLENECK.buffer_bytes,
    )


def run(scale: Scale = SMALL, seed: int = 0,
        n_sessions: int = 10) -> LossImpactResult:
    capture = max(180.0, scale.capture_duration)
    # a cohort shares one bottleneck, so the unit of fan-out is the whole
    # cohort (run_tasks), not the individual session
    rows = run_tasks(_run_cohort, [
        (StreamingStrategy.NO_ONOFF, n_sessions, capture, seed),
        (StreamingStrategy.SHORT_ONOFF, n_sessions, capture, seed),
        (StreamingStrategy.LONG_ONOFF, n_sessions, capture, seed),
    ])
    return LossImpactResult(rows, BOTTLENECK)
