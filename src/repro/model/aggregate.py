"""Aggregate video-traffic moments (Section 6.1, Equations (1)-(4)).

Sessions arrive as a Poisson process with rate ``lam``; the n-th session
downloads a video of size ``S_n = e_n * L_n`` at download-rate process
``X_n(t)``.  Following the flow-based framework of Barakat et al. [14]:

    E[R(t)] = lam * E[S_n]                              (1)
    Var[R(t)] = lam * E[ integral_0^D X_n^2(u) du ]     (2)

For a constant download rate ``G_n`` these become

    E[R(t)] = lam * E[e_n] * E[L_n]                     (3)
    Var[R(t)] = lam * E[e_n * L_n * G_n]                (4)

Equation (3) additionally assumes the encoding rate and duration are
independent (as the paper implicitly does); :func:`aggregate_mean_exact`
uses the exact ``E[S]`` when a catalog is available.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from ..workloads.catalog import Catalog


@dataclass(frozen=True)
class PopulationMoments:
    """First moments of the video/session population."""

    mean_rate_bps: float       # E[e]
    mean_duration_s: float     # E[L]
    mean_size_bits: float      # E[S] = E[e*L], exact
    mean_e_l_g: float          # E[e*L*G], exact (bits^2/s units)

    @classmethod
    def from_catalog(cls, catalog: Catalog,
                     download_rate_bps: float) -> "PopulationMoments":
        """Moments of a catalog whose sessions all download at ``G``."""
        rates = [v.encoding_rate_bps for v in catalog]
        durations = [v.duration for v in catalog]
        sizes = [e * d for e, d in zip(rates, durations)]
        n = len(catalog)
        return cls(
            mean_rate_bps=sum(rates) / n,
            mean_duration_s=sum(durations) / n,
            mean_size_bits=sum(sizes) / n,
            mean_e_l_g=sum(s * download_rate_bps for s in sizes) / n,
        )

    @classmethod
    def from_sessions(cls, rates: Sequence[float], durations: Sequence[float],
                      download_rates: Sequence[float]) -> "PopulationMoments":
        """Moments from per-session (e, L, G) triples."""
        if not (len(rates) == len(durations) == len(download_rates)):
            raise ValueError("rates, durations, download_rates must align")
        if not rates:
            raise ValueError("need at least one session")
        n = len(rates)
        sizes = [e * d for e, d in zip(rates, durations)]
        return cls(
            mean_rate_bps=sum(rates) / n,
            mean_duration_s=sum(durations) / n,
            mean_size_bits=sum(sizes) / n,
            mean_e_l_g=sum(s * g for s, g in zip(sizes, download_rates)) / n,
        )


def aggregate_mean_exact(lam: float, moments: PopulationMoments) -> float:
    """Equation (1): E[R] = lam * E[S], in bits/second."""
    _check_lam(lam)
    return lam * moments.mean_size_bits


def aggregate_mean_factored(lam: float, mean_rate_bps: float,
                            mean_duration_s: float) -> float:
    """Equation (3): E[R] = lam * E[e] * E[L] (assumes e and L independent)."""
    _check_lam(lam)
    return lam * mean_rate_bps * mean_duration_s


def aggregate_variance(lam: float, moments: PopulationMoments) -> float:
    """Equation (4): Var[R] = lam * E[e*L*G], in (bits/second)^2."""
    _check_lam(lam)
    return lam * moments.mean_e_l_g


def aggregate_variance_factored(lam: float, mean_rate_bps: float,
                                mean_duration_s: float,
                                mean_download_bps: float) -> float:
    """Equation (4) under independence: Var[R] = lam * E[e] E[L] E[G]."""
    _check_lam(lam)
    return lam * mean_rate_bps * mean_duration_s * mean_download_bps


def aggregate_cumulant(lam: float, n: int, mean_rate_bps: float,
                       mean_duration_s: float,
                       mean_download_bps: float) -> float:
    """The n-th cumulant of R(t): ``lam * E[e L G^(n-1)]`` (independence).

    For Poisson shot noise the n-th cumulant is ``lam * E[integral X^n]``
    (Barakat et al.); with X in {0, G} the kernel is ``S * G^(n-1)``
    regardless of the ON/OFF arrangement — the paper's remark that the
    strategy invariance extends beyond the variance to all higher moments.
    """
    _check_lam(lam)
    if n < 1:
        raise ValueError(f"cumulant order must be >= 1, got {n}")
    return (lam * mean_rate_bps * mean_duration_s
            * mean_download_bps ** (n - 1))


def aggregate_skewness(lam: float, mean_rate_bps: float,
                       mean_duration_s: float,
                       mean_download_bps: float) -> float:
    """Skewness of the aggregate rate: k3 / k2^(3/2).

    Scales as ``1 / sqrt(lam E[e] E[L] / E[G])``: busier links (or higher
    encoding rates at fixed G) make the aggregate not just relatively
    smoother but also more symmetric.
    """
    k2 = aggregate_cumulant(lam, 2, mean_rate_bps, mean_duration_s,
                            mean_download_bps)
    k3 = aggregate_cumulant(lam, 3, mean_rate_bps, mean_duration_s,
                            mean_download_bps)
    return k3 / k2 ** 1.5


def coefficient_of_variation(mean: float, variance: float) -> float:
    """sqrt(Var)/E — the paper's smoothness measure.

    For fixed lam and durations, CV = sqrt(E[G] / (lam E[e] E[L])): raising
    encoding rates makes the aggregate *relatively* smoother (Section 6.1,
    conclusion 3).
    """
    if mean <= 0:
        raise ValueError(f"mean must be positive, got {mean!r}")
    if variance < 0:
        raise ValueError(f"variance must be >= 0, got {variance!r}")
    return math.sqrt(variance) / mean


def _check_lam(lam: float) -> None:
    if lam <= 0:
        raise ValueError(f"arrival rate must be positive, got {lam!r}")
