"""Monte-Carlo validation of the aggregate-traffic model (Section 6).

Generates a long horizon of Poisson session arrivals, assigns each session
a download-rate process (constant / short ON-OFF / long ON-OFF), samples
the aggregate rate R(t) on a fine grid, and compares the empirical mean
and variance against Equations (3) and (4).  This is how the model
benchmarks demonstrate the strategy-invariance result numerically.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..stats import HistogramSketch, MomentAccumulator
from ..workloads.arrivals import PoissonProcess
from ..workloads.catalog import Catalog
from .onoffrate import ConstantRate, OnOffRate, RateProcess


@dataclass
class AggregateSample:
    """Empirical statistics of one Monte-Carlo run."""

    mean_bps: float
    variance_bps2: float
    horizon: float
    sessions: int
    warmup: float

    @property
    def std_bps(self) -> float:
        return math.sqrt(self.variance_bps2)


@dataclass
class AggregateMoments:
    """Mergeable statistics of one or more Monte-Carlo runs.

    The sharded counterpart of :class:`AggregateSample`: instead of a
    finished mean/variance pair it carries the grid samples' streaming
    moments and histogram sketch (:mod:`repro.stats`), so independent
    runs over disjoint horizon chunks — the shards of one campaign —
    merge into the statistics of the whole horizon.  Each shard excludes
    its own warmup, so every retained grid sample is a steady-state
    sample and pooling them is unbiased.
    """

    moments: MomentAccumulator
    sketch: HistogramSketch
    sessions: int
    horizon: float
    warmup: float

    @property
    def mean_bps(self) -> float:
        return self.moments.mean

    @property
    def variance_bps2(self) -> float:
        return self.moments.variance

    @property
    def std_bps(self) -> float:
        return self.moments.std

    def merge(self, other: "AggregateMoments") -> "AggregateMoments":
        """Fold another run in (``other`` is left untouched)."""
        merged = MomentAccumulator()
        merged.merge(self.moments)
        self.moments = merged
        self.moments.merge(other.moments)
        fresh = HistogramSketch(bins_per_decade=self.sketch.bins_per_decade)
        fresh.merge(self.sketch)
        fresh.merge(other.sketch)
        self.sketch = fresh
        self.sessions += other.sessions
        self.horizon += other.horizon
        self.warmup += other.warmup
        return self

    def sample(self) -> AggregateSample:
        """The equivalent finished :class:`AggregateSample` view."""
        return AggregateSample(
            mean_bps=self.mean_bps,
            variance_bps2=self.variance_bps2,
            horizon=self.horizon,
            sessions=self.sessions,
            warmup=self.warmup,
        )


StrategyFactory = Callable[[float, float, float], RateProcess]
# (size_bits, encoding_rate_bps, peak_bps) -> RateProcess


def constant_strategy(size_bits: float, _e: float, peak: float) -> RateProcess:
    """The no ON-OFF strategy."""
    return ConstantRate(size_bits, peak)


def short_onoff_strategy(
    block_bytes: int = 64 * 1024,
    accumulation_ratio: float = 1.25,
    buffering_playback_s: float = 40.0,
) -> StrategyFactory:
    """Factory of Flash-style short-cycle processes."""

    def build(size_bits: float, e: float, peak: float) -> RateProcess:
        average = min(accumulation_ratio * e, peak)
        duty = average / peak
        block_bits = block_bytes * 8
        period = block_bits / (duty * peak)
        buffering = min(size_bits, buffering_playback_s * e)
        return OnOffRate(size_bits, peak, period, duty, buffering)

    return build


def long_onoff_strategy(
    block_bytes: int = 5 * 1024 * 1024,
    accumulation_ratio: float = 1.25,
    buffering_playback_s: float = 60.0,
) -> StrategyFactory:
    """Factory of Chrome/Android-style long-cycle processes."""
    return short_onoff_strategy(block_bytes, accumulation_ratio,
                                buffering_playback_s)


def _simulate_grid(
    catalog: Catalog,
    lam: float,
    horizon: float,
    strategy: StrategyFactory,
    peak_bps: float,
    dt: float,
    rng: random.Random,
) -> Tuple[np.ndarray, np.ndarray, int, float]:
    """Build the aggregate-rate grid R(t) for one Poisson arrival run.

    Returns ``(times, grid, sessions, max_duration)``; callers apply
    their own warmup policy to the grid.
    """
    arrivals = PoissonProcess(lam, rng).times_until(horizon)
    grid = np.zeros(int(horizon / dt) + 1)
    times = np.arange(len(grid)) * dt

    max_duration = 0.0
    for t0 in arrivals:
        video = rng.choice(catalog.videos)
        size_bits = video.size_bytes * 8.0
        process = strategy(size_bits, video.encoding_rate_bps, peak_bps)
        duration = process.duration
        max_duration = max(max_duration, duration)
        lo = int(math.ceil((t0) / dt))
        hi = min(len(grid) - 1, int((t0 + duration) / dt))
        if hi < lo:
            continue
        local = times[lo:hi + 1] - t0
        if isinstance(process, ConstantRate):
            grid[lo:hi + 1] += process.peak_bps
        elif isinstance(process, OnOffRate):
            rates = np.zeros(local.shape)
            in_buffering = local < process.buffering_time
            rates[in_buffering] = process.peak_bps
            steady = (~in_buffering) & (local < duration)
            steady_t = local[steady] - process.buffering_time
            cycle = np.floor(steady_t / process.period_s)
            phase = steady_t - cycle * process.period_s
            on_span = np.where(
                cycle < process._full_cycles,
                process.duty * process.period_s,
                process._remainder_bits / process.peak_bps,
            )
            rates[steady] = np.where(phase < on_span, process.peak_bps, 0.0)
            grid[lo:hi + 1] += rates
        else:  # pragma: no cover - generic fallback
            grid[lo:hi + 1] += np.array([process.rate_at(u) for u in local])

    return times, grid, len(arrivals), max_duration


def _steady_samples(
    times: np.ndarray,
    grid: np.ndarray,
    horizon: float,
    max_duration: float,
    warmup: Optional[float],
) -> Tuple[np.ndarray, float]:
    """Drop the warmup prefix (default: 3x the longest download, capped
    at a quarter of the horizon) so only steady-state samples remain."""
    if warmup is None:
        warmup = min(horizon / 4, 3 * max_duration if max_duration else horizon / 4)
    samples = grid[times >= warmup]
    if samples.size < 2:
        raise ValueError("horizon too short for the requested warmup")
    return samples, warmup


def simulate_aggregate(
    catalog: Catalog,
    lam: float,
    horizon: float,
    strategy: StrategyFactory,
    *,
    peak_bps: float = 10e6,
    dt: float = 0.5,
    warmup: Optional[float] = None,
    rng: Optional[random.Random] = None,
    seed: int = 0,
) -> AggregateSample:
    """Sample the aggregate rate of Poisson video sessions.

    ``warmup`` (default: the catalog's mean download time x 3) is excluded
    from the statistics so the process is in steady state.
    """
    if rng is None:
        rng = random.Random(seed)
    times, grid, sessions, max_duration = _simulate_grid(
        catalog, lam, horizon, strategy, peak_bps, dt, rng)
    samples, warmup = _steady_samples(times, grid, horizon, max_duration,
                                      warmup)
    return AggregateSample(
        mean_bps=float(samples.mean()),
        variance_bps2=float(samples.var()),
        horizon=horizon,
        sessions=sessions,
        warmup=warmup,
    )


def simulate_aggregate_moments(
    catalog: Catalog,
    lam: float,
    horizon: float,
    strategy: StrategyFactory,
    *,
    peak_bps: float = 10e6,
    dt: float = 0.5,
    warmup: Optional[float] = None,
    rng: Optional[random.Random] = None,
    seed: int = 0,
) -> AggregateMoments:
    """Like :func:`simulate_aggregate`, but return mergeable moments.

    The run's steady-state grid samples fold into a streaming
    :class:`~repro.stats.MomentAccumulator` and
    :class:`~repro.stats.HistogramSketch` instead of a finished
    mean/variance, so shards of one campaign — independent seeds over
    horizon chunks — combine via :meth:`AggregateMoments.merge` into the
    statistics of the pooled horizon.  On the same inputs,
    ``simulate_aggregate_moments(...).sample()`` agrees with
    :func:`simulate_aggregate` exactly in session count and to float
    rounding in mean/variance.
    """
    if rng is None:
        rng = random.Random(seed)
    times, grid, sessions, max_duration = _simulate_grid(
        catalog, lam, horizon, strategy, peak_bps, dt, rng)
    samples, warmup = _steady_samples(times, grid, horizon, max_duration,
                                      warmup)
    moments = MomentAccumulator()
    moments.add_many(samples)
    sketch = HistogramSketch()
    sketch.observe_many(samples)
    return AggregateMoments(
        moments=moments,
        sketch=sketch,
        sessions=sessions,
        horizon=horizon,
        warmup=warmup,
    )


def simulate_wasted_bandwidth(
    catalog: Catalog,
    lam: float,
    horizon: float,
    *,
    buffering_playback_s: float,
    accumulation_ratio: float,
    beta_sampler: Callable[[random.Random, float], float],
    rng: Optional[random.Random] = None,
    seed: int = 0,
) -> float:
    """Empirical wasted-bandwidth rate E[R'] (bits/second).

    Each arriving session draws a watch fraction from ``beta_sampler`` and
    wastes ``e * (min(B' + k beta L, L) - beta L)`` bits; the long-run
    wasted rate is total waste / horizon, which converges to Eq. (9).
    """
    if rng is None:
        rng = random.Random(seed)
    arrivals = PoissonProcess(lam, rng).times_until(horizon)
    total_bits = 0.0
    for _t0 in arrivals:
        video = rng.choice(catalog.videos)
        beta = beta_sampler(rng, video.duration)
        if beta >= 1.0:
            continue
        downloaded_s = min(
            buffering_playback_s + accumulation_ratio * beta * video.duration,
            video.duration,
        )
        wasted_s = max(0.0, downloaded_s - beta * video.duration)
        total_bits += video.encoding_rate_bps * wasted_s
    return total_bits / horizon
