"""Network dimensioning rules and what-if analyses (Section 6.1's uses).

The paper proposes sizing links carrying video traffic at
``E[R] + alpha * sqrt(Var[R])`` and uses the model to reason about
migrations: what happens to the required capacity and to traffic
smoothness when resolutions (encoding rates) rise, when durations change,
or when one streaming strategy displaces another (answer: nothing, for the
strategy — the invariance result).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from .aggregate import (
    PopulationMoments,
    aggregate_mean_exact,
    aggregate_variance,
    coefficient_of_variation,
)


def mean_concurrent_sessions(lam: float, mean_download_time_s: float) -> float:
    """Expected number of simultaneously active downloads.

    Poisson arrivals with independent download durations form an M/G/inf
    system: the active count is Poisson with mean ``lam * E[D]``.  Note
    that E[D] — unlike the rate moments — *does* depend on the strategy:
    throttled strategies stretch the download (D' > D in Section 6.1), so
    a streaming server provisioned by concurrent connections (not
    bandwidth) does care which strategy it deploys.
    """
    if lam <= 0:
        raise ValueError(f"arrival rate must be positive, got {lam!r}")
    if mean_download_time_s <= 0:
        raise ValueError(
            f"mean download time must be positive, got {mean_download_time_s!r}")
    return lam * mean_download_time_s


def concurrent_sessions_quantile(lam: float, mean_download_time_s: float,
                                 q: float = 0.99) -> int:
    """An upper quantile of the concurrent-session count (server sizing).

    Uses the normal approximation to the Poisson (mean = variance =
    ``lam * E[D]``), which is accurate for the double-digit session counts
    a streaming server worries about.
    """
    if not 0.0 < q < 1.0:
        raise ValueError(f"quantile must be in (0, 1), got {q!r}")
    mean = mean_concurrent_sessions(lam, mean_download_time_s)
    # inverse normal CDF via the Acklam rational approximation's simple
    # cousin: binary search on erf is plenty here
    lo, hi = 0.0, mean + 20 * math.sqrt(mean) + 20
    target = q
    for _ in range(80):
        mid = (lo + hi) / 2
        value = 0.5 * (1 + math.erf((mid - mean) / math.sqrt(2 * mean)))
        if value < target:
            lo = mid
        else:
            hi = mid
    return int(math.ceil(hi))


def required_capacity(mean_bps: float, variance_bps2: float,
                      alpha: float = 2.0) -> float:
    """The E[R] + alpha*sqrt(V_R) provisioning rule (alpha >= 1)."""
    if alpha < 1.0:
        raise ValueError(f"alpha must be >= 1, got {alpha!r}")
    if mean_bps < 0 or variance_bps2 < 0:
        raise ValueError("moments must be non-negative")
    return mean_bps + alpha * math.sqrt(variance_bps2)


@dataclass(frozen=True)
class ProvisioningPlan:
    """Capacity planning outcome for one scenario."""

    lam: float
    mean_bps: float
    variance_bps2: float
    alpha: float

    @property
    def capacity_bps(self) -> float:
        return required_capacity(self.mean_bps, self.variance_bps2, self.alpha)

    @property
    def smoothness_cv(self) -> float:
        return coefficient_of_variation(self.mean_bps, self.variance_bps2)

    @property
    def headroom_share(self) -> float:
        """Capacity share reserved for variability."""
        return 1.0 - self.mean_bps / self.capacity_bps


def plan_for(lam: float, moments: PopulationMoments,
             alpha: float = 2.0) -> ProvisioningPlan:
    """Dimension a link for Poisson sessions with the given population."""
    return ProvisioningPlan(
        lam=lam,
        mean_bps=aggregate_mean_exact(lam, moments),
        variance_bps2=aggregate_variance(lam, moments),
        alpha=alpha,
    )


@dataclass(frozen=True)
class MigrationEffect:
    """Before/after comparison for a what-if migration."""

    label: str
    before: ProvisioningPlan
    after: ProvisioningPlan

    @property
    def capacity_ratio(self) -> float:
        return self.after.capacity_bps / self.before.capacity_bps

    @property
    def mean_ratio(self) -> float:
        return self.after.mean_bps / self.before.mean_bps

    @property
    def smoothness_ratio(self) -> float:
        """< 1 means the aggregate got smoother."""
        return self.after.smoothness_cv / self.before.smoothness_cv


def encoding_rate_migration(
    lam: float,
    moments: PopulationMoments,
    rate_scale: float,
    alpha: float = 2.0,
    label: str = "encoding-rate increase",
) -> MigrationEffect:
    """Scale every encoding rate by ``rate_scale`` (e.g. a default-resolution
    bump) and report the effect: mean and variance grow linearly, so the
    CV shrinks by 1/sqrt(scale) — "higher rates, smoother traffic"."""
    if rate_scale <= 0:
        raise ValueError(f"rate_scale must be positive, got {rate_scale!r}")
    scaled = PopulationMoments(
        mean_rate_bps=moments.mean_rate_bps * rate_scale,
        mean_duration_s=moments.mean_duration_s,
        mean_size_bits=moments.mean_size_bits * rate_scale,
        mean_e_l_g=moments.mean_e_l_g * rate_scale,
    )
    return MigrationEffect(
        label=label,
        before=plan_for(lam, moments, alpha),
        after=plan_for(lam, scaled, alpha),
    )


def strategy_migration(
    lam: float,
    moments: PopulationMoments,
    alpha: float = 2.0,
    label: str = "strategy change",
) -> MigrationEffect:
    """A pure strategy migration (same sizes, same peak rates): by the
    Section 6.1 invariance the plan is unchanged; this helper exists to
    make the invariance an explicit, reportable result."""
    return MigrationEffect(
        label=label,
        before=plan_for(lam, moments, alpha),
        after=plan_for(lam, moments, alpha),
    )
