"""Interrupted downloads and wasted bandwidth (Section 6.2, Eqs (5)-(9)).

When the viewer abandons the n-th video after watching a fraction
``beta_n`` of it, the bytes downloaded beyond the watch point are wasted.
With buffering amount ``B_n`` (downloaded "instantly"), accumulation ratio
``k_n = G_n / e_n`` and watch time ``tau_n = beta_n * L_n``:

* the interruption strikes before the download finishes iff
  ``e L > B + G tau``   (Eq. (5)), i.e. ``B' < L (1 - k beta)`` with
  ``B = e B'``         (Eq. (7));
* the unused bytes are ``min(B + G tau, e L) - e tau``  (from Eq. (8));
* the average wasted bandwidth is
  ``E[R'] = lam E[e] E[min(B' + k beta L, L) - beta L]``  (Eq. (9)).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Tuple


def download_outlives_interruption(
    duration: float,
    buffering_playback_s: float,
    accumulation_ratio: float,
    watch_fraction: float,
) -> bool:
    """Equation (7)'s condition: is the download still in progress when
    the viewer quits?  (``B' < L (1 - k beta)``)."""
    _check_params(duration, buffering_playback_s, accumulation_ratio,
                  watch_fraction)
    return buffering_playback_s < duration * (1.0 - accumulation_ratio
                                              * watch_fraction)


def critical_duration(
    buffering_playback_s: float,
    accumulation_ratio: float,
    watch_fraction: float,
) -> float:
    """The video duration below which the whole video is always downloaded
    before a viewer quitting at ``watch_fraction`` of it.

    The paper's worked example: B' = 40 s, k = 1.25, beta = 0.2 gives
    L = 40 / (1 - 0.25) = 53.3 s — Flash videos shorter than this are
    fully fetched even though only 20 % gets watched.
    """
    if buffering_playback_s < 0:
        raise ValueError("buffering playback time must be >= 0")
    if accumulation_ratio < 1.0:
        raise ValueError("accumulation ratio must be >= 1")
    if not 0.0 < watch_fraction < 1.0:
        raise ValueError("watch fraction must be in (0, 1)")
    share = 1.0 - accumulation_ratio * watch_fraction
    if share <= 0.0:
        return math.inf   # k*beta >= 1: downloads always complete first
    return buffering_playback_s / share


def unused_bytes(
    encoding_rate_bps: float,
    duration: float,
    buffering_bytes: float,
    download_rate_bps: float,
    watch_time_s: float,
) -> float:
    """Unused bytes for one interrupted session (Eq. (8)'s integrand):
    ``min(B + G tau, e L) - e tau`` (in bytes; rates in bits/second)."""
    if encoding_rate_bps <= 0 or duration <= 0:
        raise ValueError("rate and duration must be positive")
    if watch_time_s < 0 or buffering_bytes < 0 or download_rate_bps < 0:
        raise ValueError("negative inputs")
    downloaded = min(
        buffering_bytes + download_rate_bps * watch_time_s / 8,
        encoding_rate_bps * duration / 8,
    )
    consumed = encoding_rate_bps * min(watch_time_s, duration) / 8
    return max(0.0, downloaded - consumed)


def unused_playback_seconds(
    duration: float,
    buffering_playback_s: float,
    accumulation_ratio: float,
    watch_fraction: float,
) -> float:
    """Eq. (9)'s kernel in playback-time units:
    ``min(B' + k beta L, L) - beta L``."""
    _check_params(duration, buffering_playback_s, accumulation_ratio,
                  watch_fraction)
    downloaded = min(
        buffering_playback_s + accumulation_ratio * watch_fraction * duration,
        duration,
    )
    return max(0.0, downloaded - watch_fraction * duration)


def wasted_bandwidth_exact(
    lam: float,
    sessions: Iterable[Tuple[float, float, float]],
    buffering_playback_s: float,
    accumulation_ratio: float,
) -> float:
    """Equation (8) as an exact per-session expectation.

    ``sessions`` yields ``(encoding_rate_bps, duration_s, beta)`` triples;
    the result is E[R'] in bits/second: ``lam * E[e * unused_playback]``.
    """
    if lam <= 0:
        raise ValueError(f"arrival rate must be positive, got {lam!r}")
    total = 0.0
    count = 0
    for rate, duration, beta in sessions:
        if beta >= 1.0:
            count += 1
            continue  # completed views waste nothing
        total += rate * unused_playback_seconds(
            duration, buffering_playback_s, accumulation_ratio, beta)
        count += 1
    if count == 0:
        raise ValueError("no sessions supplied")
    return lam * total / count


def wasted_bandwidth_factored(
    lam: float,
    mean_rate_bps: float,
    durations: Sequence[float],
    betas: Sequence[float],
    buffering_playback_s: float,
    accumulation_ratio: float,
) -> float:
    """Equation (9): ``lam * E[e] * E[min(B' + k beta L, L) - beta L]``
    (rate assumed independent of duration and beta)."""
    if len(durations) != len(betas):
        raise ValueError("durations and betas must align")
    if not durations:
        raise ValueError("no sessions supplied")
    kernel = [
        0.0 if beta >= 1.0 else unused_playback_seconds(
            duration, buffering_playback_s, accumulation_ratio, beta)
        for duration, beta in zip(durations, betas)
    ]
    return lam * mean_rate_bps * sum(kernel) / len(kernel)


@dataclass(frozen=True)
class WasteSweepPoint:
    """One point of a buffering/accumulation what-if sweep."""

    buffering_playback_s: float
    accumulation_ratio: float
    wasted_bps: float
    wasted_share: float           # wasted / useful aggregate rate


def waste_sweep(
    lam: float,
    sessions: Sequence[Tuple[float, float, float]],
    buffering_values: Sequence[float],
    accumulation_values: Sequence[float],
) -> list:
    """Sweep (B', k) and report the wasted bandwidth at each point —
    the "parameters that can be adapted to minimize unused bytes"
    recommendation of the conclusion."""
    useful = lam * sum(r * d * min(b, 1.0) for r, d, b in sessions) / len(sessions)
    points = []
    for buffering in buffering_values:
        for k in accumulation_values:
            wasted = wasted_bandwidth_exact(lam, sessions, buffering, k)
            points.append(WasteSweepPoint(
                buffering_playback_s=buffering,
                accumulation_ratio=k,
                wasted_bps=wasted,
                wasted_share=wasted / useful if useful > 0 else math.inf,
            ))
    return points


def _check_params(duration, buffering_playback_s, accumulation_ratio,
                  watch_fraction) -> None:
    if duration <= 0:
        raise ValueError(f"duration must be positive, got {duration!r}")
    if buffering_playback_s < 0:
        raise ValueError("buffering playback time must be >= 0")
    if accumulation_ratio < 1.0:
        raise ValueError(
            f"accumulation ratio must be >= 1, got {accumulation_ratio!r}")
    if not 0.0 <= watch_fraction <= 1.0:
        raise ValueError(
            f"watch fraction must be in [0, 1], got {watch_fraction!r}")
