"""Per-session download-rate processes and the strategy-invariance result.

Section 6.1's key observation: if the instantaneous download rate only
takes the values {0, G_n}, then

    integral_0^D X_n^2(u) du = G_n * integral_0^D X_n(u) du = G_n * S_n

*independent of how the ON and OFF periods are arranged*.  Bulk transfer,
short cycles and long cycles therefore all produce the same aggregate mean
and variance (and, by the same argument, the same higher moments).  These
classes make the invariance computable and testable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


class RateProcess:
    """A session's download-rate function X(t) on [0, D]."""

    @property
    def duration(self) -> float:
        """Time to download the whole video, D."""
        raise NotImplementedError

    def rate_at(self, t: float) -> float:
        """X(t), bits/second."""
        raise NotImplementedError

    def integral_rate(self) -> float:
        """integral X(u) du over [0, D] = the video size in bits."""
        raise NotImplementedError

    def integral_rate_squared(self) -> float:
        """integral X^2(u) du over [0, D] (drives the variance, Eq. (2))."""
        raise NotImplementedError

    def integral_rate_power(self, n: int) -> float:
        """integral X^n(u) du over [0, D] — the n-th cumulant kernel in the
        Barakat et al. framework (the paper's "higher moments" remark)."""
        raise NotImplementedError


@dataclass(frozen=True)
class ConstantRate(RateProcess):
    """The no ON-OFF strategy: X(t) = G for the whole download."""

    size_bits: float
    peak_bps: float

    def __post_init__(self):
        _check(self.size_bits, self.peak_bps)

    @property
    def duration(self) -> float:
        return self.size_bits / self.peak_bps

    def rate_at(self, t: float) -> float:
        return self.peak_bps if 0.0 <= t < self.duration else 0.0

    def integral_rate(self) -> float:
        return self.size_bits

    def integral_rate_squared(self) -> float:
        return self.size_bits * self.peak_bps

    def integral_rate_power(self, n: int) -> float:
        if n < 1:
            raise ValueError(f"moment order must be >= 1, got {n}")
        return self.size_bits * self.peak_bps ** (n - 1)


@dataclass(frozen=True)
class OnOffRate(RateProcess):
    """Short or long ON-OFF cycles: X alternates between G and 0.

    ``duty`` is the ON fraction of each cycle; the average rate is
    ``duty * G = k * e`` for accumulation ratio k.  ``period`` sets the
    cycle length (block size = duty * period * G bits).
    """

    size_bits: float
    peak_bps: float
    period_s: float
    duty: float
    buffering_bits: float = 0.0   # pushed at peak rate before cycling starts

    def __post_init__(self):
        _check(self.size_bits, self.peak_bps)
        if not 0.0 < self.duty <= 1.0:
            raise ValueError(f"duty must be in (0, 1], got {self.duty!r}")
        if self.period_s <= 0:
            raise ValueError(f"period must be positive, got {self.period_s!r}")
        if not 0.0 <= self.buffering_bits <= self.size_bits:
            raise ValueError("buffering_bits must be within the video size")

    @property
    def block_bits(self) -> float:
        return self.duty * self.period_s * self.peak_bps

    @property
    def buffering_time(self) -> float:
        return self.buffering_bits / self.peak_bps

    @property
    def _full_cycles(self) -> int:
        steady_bits = self.size_bits - self.buffering_bits
        return int(steady_bits // self.block_bits)

    @property
    def _remainder_bits(self) -> float:
        steady_bits = self.size_bits - self.buffering_bits
        return steady_bits - self._full_cycles * self.block_bits

    @property
    def duration(self) -> float:
        """Buffering, the full cycles, then one final partial ON period
        carrying the leftover bits (no trailing OFF)."""
        d = self.buffering_time + self._full_cycles * self.period_s
        if self._remainder_bits > 0:
            d += self._remainder_bits / self.peak_bps
        return d

    def rate_at(self, t: float) -> float:
        if t < 0.0 or t >= self.duration:
            return 0.0
        if t < self.buffering_time:
            return self.peak_bps
        steady_t = t - self.buffering_time
        cycle = int(steady_t // self.period_s)
        phase = steady_t - cycle * self.period_s
        if cycle < self._full_cycles:
            return self.peak_bps if phase < self.duty * self.period_s else 0.0
        # final partial block: ON exactly long enough for the leftover bits
        return self.peak_bps if phase < self._remainder_bits / self.peak_bps else 0.0

    def integral_rate(self) -> float:
        return self.size_bits

    def integral_rate_squared(self) -> float:
        # X in {0, G}  =>  X^2 = G * X pointwise
        return self.size_bits * self.peak_bps

    def integral_rate_power(self, n: int) -> float:
        # X in {0, G}  =>  X^n = G^(n-1) * X pointwise: the invariance
        # extends to every moment order, as the paper observes
        if n < 1:
            raise ValueError(f"moment order must be >= 1, got {n}")
        return self.size_bits * self.peak_bps ** (n - 1)


def variance_contribution(process: RateProcess) -> float:
    """The session's contribution to Var[R]: integral X^2 (Eq. (2))."""
    return process.integral_rate_squared()


def invariance_gap(a: RateProcess, b: RateProcess) -> float:
    """Relative difference between two strategies' variance contributions.

    Zero (up to float noise) whenever both processes move the same bytes
    at the same peak rate — the Section 6.1 invariance.
    """
    va, vb = a.integral_rate_squared(), b.integral_rate_squared()
    denominator = max(abs(va), abs(vb), 1e-12)
    return abs(va - vb) / denominator


def _check(size_bits: float, peak_bps: float) -> None:
    if size_bits <= 0:
        raise ValueError(f"size must be positive, got {size_bits!r}")
    if peak_bps <= 0:
        raise ValueError(f"peak rate must be positive, got {peak_bps!r}")
