"""Video objects: the unit of the paper's datasets."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

#: Encoding-rate variants offered for one video: (resolution, bits/second).
Variant = Tuple[str, float]


@dataclass(frozen=True)
class Video:
    """One streamable video.

    ``encoding_rate_bps`` is the rate of the *default* rendition (what a
    PC browser plays without manual intervention, per Section 4.1).
    ``variants`` lists every available rendition — Netflix and the native
    iPad application pick among them based on bandwidth and device.
    """

    video_id: str
    duration: float              # seconds
    encoding_rate_bps: float     # default rendition
    resolution: str              # e.g. "360p"
    container: str               # "flv" | "webm" | "silverlight"
    variants: Tuple[Variant, ...] = ()

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError(f"duration must be positive, got {self.duration!r}")
        if self.encoding_rate_bps <= 0:
            raise ValueError(
                f"encoding rate must be positive, got {self.encoding_rate_bps!r}"
            )
        if self.container not in ("flv", "webm", "silverlight"):
            raise ValueError(f"unknown container {self.container!r}")

    @property
    def size_bytes(self) -> int:
        """Size of the default rendition: S = e * L (Section 6 notation)."""
        return int(self.duration * self.encoding_rate_bps / 8)

    def size_bytes_at(self, rate_bps: float) -> int:
        """Size of a rendition at a specific encoding rate."""
        return int(self.duration * rate_bps / 8)

    @property
    def all_rates(self) -> Tuple[float, ...]:
        """Every available encoding rate, default first."""
        rates = [self.encoding_rate_bps]
        rates.extend(rate for _res, rate in self.variants
                     if rate != self.encoding_rate_bps)
        return tuple(rates)

    def variant_at_most(self, max_rate_bps: float) -> Variant:
        """The best rendition not exceeding ``max_rate_bps``.

        Falls back to the lowest rendition when even that exceeds the cap
        (a player must play *something*).
        """
        candidates = [("default", self.encoding_rate_bps)] + list(self.variants)
        candidates.sort(key=lambda v: v[1])
        best = candidates[0]
        for variant in candidates:
            if variant[1] <= max_rate_bps:
                best = variant
        return best

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Video({self.video_id}, {self.duration:.0f}s, "
            f"{self.encoding_rate_bps / 1e6:.2f}Mbps {self.resolution} "
            f"{self.container})"
        )
