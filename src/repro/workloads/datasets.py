"""The paper's six datasets (Section 4.1), synthesized at full or scaled size.

=========  =====  =========================  ==========  ===================
Dataset    Size   Encoding rates             Container   Default resolution
=========  =====  =========================  ==========  ===================
YouFlash   5000   0.2 - 1.5 Mbps             Flash       240p / 360p
YouHD      2000   0.2 - 4.8 Mbps             Flash       720p
YouHtml    3000   0.2 - 2.5 Mbps             HTML5       360p
YouMob     1000   0.2 - 2.7 Mbps             HTML5       (device-dependent)
NetPC       200   ladder 0.5 - 3.8 Mbps      Silverlight adaptive
NetMob       50   subset of NetPC            Silverlight adaptive
=========  =====  =========================  ==========  ===================

``scale`` shrinks every dataset proportionally so tests and benchmarks run
in seconds; ``scale=1.0`` reproduces the paper's sizes.
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from ..simnet.rng import derive_seed
from .catalog import (
    MBPS,
    TIER_240P,
    TIER_360P,
    TIER_360P_WEBM,
    TIER_480P,
    TIER_720P,
    Catalog,
    generate_netflix_catalog,
    generate_youtube_catalog,
)
from .video import Video

FULL_SIZES = {
    "YouFlash": 5000,
    "YouHD": 2000,
    "YouHtml": 3000,
    "YouMob": 1000,
    "NetPC": 200,
    "NetMob": 50,
}

DATASET_NAMES = tuple(FULL_SIZES)


def _scaled(name: str, scale: float, minimum: int = 8) -> int:
    return max(minimum, int(round(FULL_SIZES[name] * scale)))


def make_youflash(seed: int = 0, scale: float = 1.0) -> Catalog:
    """YouTube Flash videos at default resolution (240p/360p)."""
    return generate_youtube_catalog(
        "YouFlash",
        _scaled("YouFlash", scale),
        tiers=[(TIER_240P, 0.35), (TIER_360P, 0.65)],
        container="flv",
        seed=seed,
    )


def make_youhd(seed: int = 0, scale: float = 1.0) -> Catalog:
    """YouTube HD videos (720p, streamed over Flash)."""
    return generate_youtube_catalog(
        "YouHD",
        _scaled("YouHD", scale),
        tiers=[(TIER_720P, 1.0)],
        container="flv",
        seed=seed,
    )


def make_youhtml(seed: int = 0, scale: float = 1.0) -> Catalog:
    """YouTube HTML5 videos: YouFlash/YouHD titles re-served as webM at 360p.

    The paper built YouHtml from 2500 YouFlash videos plus 500 YouHD
    videos, all streamed at the HTML5 default of 360p with rates up to
    2.5 Mbps; we synthesize the same 5:1 mixture.
    """
    size = _scaled("YouHtml", scale)
    hd_part = max(1, size // 6)
    flash_part = size - hd_part
    base = generate_youtube_catalog(
        "YouHtml-flash",
        flash_part,
        tiers=[(TIER_360P_WEBM, 1.0)],
        container="webm",
        seed=derive_seed(seed, "youhtml-flashpart"),
    )
    hd = generate_youtube_catalog(
        "YouHtml-hd",
        hd_part,
        tiers=[(TIER_360P_WEBM, 1.0)],
        container="webm",
        seed=derive_seed(seed, "youhtml-hdpart"),
    )
    videos = list(base) + list(hd)
    renamed = [
        Video(
            video_id=f"youhtml-{i:05d}",
            duration=v.duration,
            encoding_rate_bps=v.encoding_rate_bps,
            resolution="360p",
            container="webm",
            variants=v.variants,
        )
        for i, v in enumerate(videos)
    ]
    return Catalog("YouHtml", renamed)


def make_youmob(seed: int = 0, scale: float = 1.0) -> Catalog:
    """Videos playable by the native mobile applications (0.2-2.7 Mbps)."""
    return generate_youtube_catalog(
        "YouMob",
        _scaled("YouMob", scale),
        tiers=[(TIER_360P_WEBM, 0.6), (TIER_480P, 0.4)],
        container="webm",
        seed=seed,
    )


def make_netpc(seed: int = 0, scale: float = 1.0) -> Catalog:
    """200 titles sampled from the 11208 watch-instantly list of 2011."""
    return generate_netflix_catalog("NetPC", _scaled("NetPC", scale), seed=seed)


def make_netmob(seed: int = 0, scale: float = 1.0, netpc: Optional[Catalog] = None) -> Catalog:
    """50 titles randomly selected from the NetPC dataset."""
    source = netpc if netpc is not None else make_netpc(seed=seed, scale=scale)
    rng = random.Random(derive_seed(seed, "netmob-selection"))
    want = min(_scaled("NetMob", scale), len(source))
    picked = rng.sample(source.videos, want)
    return Catalog("NetMob", picked)


_FACTORIES = {
    "YouFlash": make_youflash,
    "YouHD": make_youhd,
    "YouHtml": make_youhtml,
    "YouMob": make_youmob,
    "NetPC": make_netpc,
    "NetMob": make_netmob,
}


def make_dataset(name: str, seed: int = 0, scale: float = 1.0) -> Catalog:
    """Build any of the six datasets by name."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise KeyError(f"unknown dataset {name!r}; know {sorted(_FACTORIES)}") from None
    return factory(seed=seed, scale=scale)


def make_all_datasets(seed: int = 0, scale: float = 1.0) -> Dict[str, Catalog]:
    """All six datasets, with NetMob drawn from the same NetPC instance."""
    datasets = {
        name: make_dataset(name, seed=seed, scale=scale)
        for name in ("YouFlash", "YouHD", "YouHtml", "YouMob", "NetPC")
    }
    datasets["NetMob"] = make_netmob(seed=seed, scale=scale, netpc=datasets["NetPC"])
    return datasets
