"""The paper's video datasets, interruption models and arrival processes."""

from .arrivals import PoissonProcess, SessionArrival, generate_sessions
from .catalog import (
    MBPS,
    NETFLIX_LADDER_BPS,
    Catalog,
    ResolutionTier,
    generate_netflix_catalog,
    generate_youtube_catalog,
    sample_netflix_duration,
    sample_youtube_duration,
)
from .datasets import (
    DATASET_NAMES,
    FULL_SIZES,
    make_all_datasets,
    make_dataset,
    make_netmob,
    make_netpc,
    make_youflash,
    make_youhd,
    make_youhtml,
    make_youmob,
)
from .popularity import ZipfPopularity
from .interrupts import (
    INTEREST,
    QUALITY,
    EmpiricalInterruptionModel,
    FixedBetaModel,
    Interruption,
    InterruptionModel,
    NoInterruption,
)
from .video import Variant, Video

__all__ = [
    "Video",
    "Variant",
    "Catalog",
    "ResolutionTier",
    "MBPS",
    "NETFLIX_LADDER_BPS",
    "generate_youtube_catalog",
    "generate_netflix_catalog",
    "sample_youtube_duration",
    "sample_netflix_duration",
    "DATASET_NAMES",
    "FULL_SIZES",
    "make_dataset",
    "make_all_datasets",
    "make_youflash",
    "make_youhd",
    "make_youhtml",
    "make_youmob",
    "make_netpc",
    "make_netmob",
    "Interruption",
    "InterruptionModel",
    "NoInterruption",
    "FixedBetaModel",
    "EmpiricalInterruptionModel",
    "INTEREST",
    "QUALITY",
    "PoissonProcess",
    "SessionArrival",
    "generate_sessions",
    "ZipfPopularity",
]
