"""Video popularity models.

The paper's related work (Cha et al. [15], Zink et al. [26]) established
that YouTube video popularity is heavy-tailed — a Zipf-like head with a
truncated tail — which matters for any aggregate-traffic computation that
samples videos per session: popular videos' parameters dominate E[e],
E[L], E[S].  :class:`ZipfPopularity` provides the standard model; the
arrival generator accepts it to weight its video choices.
"""

from __future__ import annotations

import bisect
import itertools
import random
from typing import List, Optional, Sequence

from .catalog import Catalog
from .video import Video


class ZipfPopularity:
    """Zipf(alpha) popularity over a catalog's rank order.

    Rank ``i`` (0-based) carries weight ``1 / (i + 1) ** alpha``.  Ranks
    are assigned by catalog order by default, or by a supplied permutation.
    """

    def __init__(self, n: int, alpha: float = 0.8,
                 ranks: Optional[Sequence[int]] = None) -> None:
        if n <= 0:
            raise ValueError(f"need a positive catalog size, got {n}")
        if alpha < 0:
            raise ValueError(f"alpha must be >= 0, got {alpha}")
        self.n = n
        self.alpha = alpha
        if ranks is None:
            ranks = range(n)
        else:
            if sorted(ranks) != list(range(n)):
                raise ValueError("ranks must be a permutation of 0..n-1")
        weights = [0.0] * n
        for index, rank in zip(range(n), ranks):
            weights[index] = 1.0 / (rank + 1) ** alpha
        total = sum(weights)
        self._cumulative: List[float] = list(
            itertools.accumulate(w / total for w in weights))

    def probability(self, index: int) -> float:
        """P(video at catalog position ``index`` is requested)."""
        if not 0 <= index < self.n:
            raise IndexError(f"index {index} out of range 0..{self.n - 1}")
        prev = self._cumulative[index - 1] if index else 0.0
        return self._cumulative[index] - prev

    def sample_index(self, rng: random.Random) -> int:
        """Draw a catalog position according to the popularity law."""
        return bisect.bisect_left(self._cumulative, rng.random())

    def sample_video(self, catalog: Catalog, rng: random.Random) -> Video:
        return catalog[self.sample_index(rng)]

    def head_share(self, head_fraction: float = 0.1) -> float:
        """Probability mass carried by the top ``head_fraction`` of ranks.

        With alpha ~ 0.8 and a 10 % head this lands near the classic
        "top 10 % of videos serve most of the requests" observation.
        """
        if not 0.0 < head_fraction <= 1.0:
            raise ValueError(f"head fraction must be in (0, 1], got "
                             f"{head_fraction!r}")
        cut = max(1, int(self.n * head_fraction))
        return self._cumulative[cut - 1]
