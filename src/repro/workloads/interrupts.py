"""User-interruption models (Section 6.2's beta_n).

The paper grounds its interruption analysis in three measurement studies:

* Finamore et al. [16]: 60 % of YouTube videos are watched for less than
  20 % of their duration;
* Gill et al. [17]: 80 % of interruptions are due to lack of interest;
* Huang et al. [19]: viewing time decreases as video duration grows.

:class:`EmpiricalInterruptionModel` reproduces these aggregate statistics
with a mixture: a point mass of completed views plus a skewed Beta for the
watched fraction of abandoned views.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

INTEREST = "lack-of-interest"
QUALITY = "poor-quality"


@dataclass(frozen=True)
class Interruption:
    """One sampled viewing outcome."""

    beta: float              # fraction of the video watched, in (0, 1]
    completed: bool          # True when the whole video was watched
    reason: Optional[str]    # None when completed

    @property
    def interrupted(self) -> bool:
        return not self.completed


class InterruptionModel:
    """Base interface: sample a viewing outcome for a video duration."""

    def sample(self, rng: random.Random, duration: float) -> Interruption:
        raise NotImplementedError

    def mean_beta(self, rng: random.Random, duration: float, n: int = 20000) -> float:
        """Monte-Carlo mean watched fraction (used by the model benches)."""
        total = 0.0
        for _ in range(n):
            total += self.sample(rng, duration).beta
        return total / n


class NoInterruption(InterruptionModel):
    """Everyone watches everything (the Section 6.1 regime)."""

    def sample(self, rng: random.Random, duration: float) -> Interruption:
        return Interruption(beta=1.0, completed=True, reason=None)


class FixedBetaModel(InterruptionModel):
    """Every viewer abandons after exactly ``beta`` of the video."""

    def __init__(self, beta: float) -> None:
        if not 0.0 < beta <= 1.0:
            raise ValueError(f"beta must be in (0, 1], got {beta!r}")
        self.beta = beta

    def sample(self, rng: random.Random, duration: float) -> Interruption:
        if self.beta >= 1.0:
            return Interruption(1.0, True, None)
        return Interruption(self.beta, False, INTEREST)


class EmpiricalInterruptionModel(InterruptionModel):
    """Mixture model calibrated against Finamore/Gill/Huang.

    With probability ``p_complete`` the video is watched in full.
    Otherwise the watched fraction is Beta(a, b)-distributed, and the
    abandonment reason is lack of interest with probability
    ``p_interest`` (else quality).  ``duration_sensitivity`` shrinks the
    completion probability for long videos (Huang et al.): the completion
    odds are scaled by ``(ref_duration / duration) ** duration_sensitivity``
    for videos longer than ``ref_duration``.

    Defaults reproduce "60 % of videos watched < 20 % of duration".
    """

    def __init__(
        self,
        p_complete: float = 0.15,
        beta_a: float = 0.45,
        beta_b: float = 2.5,
        p_interest: float = 0.8,
        duration_sensitivity: float = 0.3,
        ref_duration: float = 300.0,
    ) -> None:
        if not 0.0 <= p_complete < 1.0:
            raise ValueError(f"p_complete must be in [0, 1), got {p_complete!r}")
        if not 0.0 <= p_interest <= 1.0:
            raise ValueError(f"p_interest must be in [0, 1], got {p_interest!r}")
        self.p_complete = p_complete
        self.beta_a = beta_a
        self.beta_b = beta_b
        self.p_interest = p_interest
        self.duration_sensitivity = duration_sensitivity
        self.ref_duration = ref_duration

    def completion_probability(self, duration: float) -> float:
        """Duration-aware completion probability (Huang et al. effect)."""
        if duration <= self.ref_duration or self.duration_sensitivity == 0.0:
            return self.p_complete
        factor = (self.ref_duration / duration) ** self.duration_sensitivity
        return self.p_complete * factor

    def sample(self, rng: random.Random, duration: float) -> Interruption:
        if rng.random() < self.completion_probability(duration):
            return Interruption(beta=1.0, completed=True, reason=None)
        beta = rng.betavariate(self.beta_a, self.beta_b)
        beta = min(max(beta, 1e-4), 0.999)
        reason = INTEREST if rng.random() < self.p_interest else QUALITY
        return Interruption(beta=beta, completed=False, reason=reason)

    def fraction_watched_below(self, threshold: float, rng: random.Random,
                               duration: float = 200.0, n: int = 20000) -> float:
        """Empirical P(beta < threshold), for calibration checks."""
        hits = 0
        for _ in range(n):
            if self.sample(rng, duration).beta < threshold:
                hits += 1
        return hits / n
