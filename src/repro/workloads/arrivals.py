"""Poisson session arrivals (the Section 6 assumption, after Yu et al.).

The analytical model assumes streaming sessions arrive as a homogeneous
Poisson process with rate ``lam``; this module generates those arrival
processes and binds them to catalog videos for Monte-Carlo validation.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

from .catalog import Catalog
from .video import Video


@dataclass(frozen=True)
class SessionArrival:
    """One streaming session: when it starts and which video it plays."""

    time: float
    video: Video
    beta: float = 1.0        # fraction watched before interruption
    completed: bool = True


class PoissonProcess:
    """Homogeneous Poisson process with rate ``lam`` (events/second)."""

    def __init__(self, lam: float, rng: random.Random) -> None:
        if lam <= 0:
            raise ValueError(f"rate must be positive, got {lam!r}")
        self.lam = lam
        self._rng = rng

    def times_until(self, horizon: float) -> List[float]:
        """All arrival times in ``[0, horizon)``."""
        times = []
        t = self._rng.expovariate(self.lam)
        while t < horizon:
            times.append(t)
            t += self._rng.expovariate(self.lam)
        return times

    def iter_times(self) -> Iterator[float]:
        """Unbounded arrival-time generator."""
        t = 0.0
        while True:
            t += self._rng.expovariate(self.lam)
            yield t


def generate_sessions(
    catalog: Catalog,
    lam: float,
    horizon: float,
    rng: random.Random,
    interruption_model=None,
    popularity=None,
) -> List[SessionArrival]:
    """Poisson arrivals over ``[0, horizon)``, each playing a random video.

    When ``interruption_model`` is given, every session draws a watched
    fraction from it (Section 6.2); otherwise all sessions complete.
    ``popularity`` (e.g. a :class:`~repro.workloads.popularity.
    ZipfPopularity`) weights the video choice; uniform by default.
    """
    process = PoissonProcess(lam, rng)
    sessions = []
    for t in process.times_until(horizon):
        if popularity is not None:
            video = popularity.sample_video(catalog, rng)
        else:
            video = rng.choice(catalog.videos)
        if interruption_model is None:
            sessions.append(SessionArrival(time=t, video=video))
        else:
            outcome = interruption_model.sample(rng, video.duration)
            sessions.append(
                SessionArrival(
                    time=t,
                    video=video,
                    beta=outcome.beta,
                    completed=outcome.completed,
                )
            )
    return sessions
