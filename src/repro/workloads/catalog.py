"""Seeded synthesis of video catalogs.

The paper's datasets are samples of real 2011 YouTube/Netflix catalogs that
no longer exist; we synthesize catalogs with the *published* parameters
(dataset sizes, encoding-rate ranges, default resolutions — Section 4.1)
and defensible shape assumptions for what the paper does not publish:

* YouTube durations follow a lognormal with a median near 3.5 minutes
  (Cha et al. 2007, Gill et al. 2007 report medians in the 3-4 minute
  range), clipped to [30 s, 3600 s];
* Netflix titles are movies and TV episodes: a bimodal mix near 22 and
  95 minutes;
* encoding rates are drawn per resolution tier, uniform within the tier.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from ..simnet.rng import derive_seed
from .video import Variant, Video

MBPS = 1e6


@dataclass(frozen=True)
class ResolutionTier:
    """One resolution with its encoding-rate band."""

    name: str
    min_rate_bps: float
    max_rate_bps: float

    def sample_rate(self, rng: random.Random) -> float:
        return rng.uniform(self.min_rate_bps, self.max_rate_bps)


# YouTube tiers per the ranges of Section 4.1
TIER_240P = ResolutionTier("240p", 0.2 * MBPS, 0.7 * MBPS)
TIER_360P = ResolutionTier("360p", 0.4 * MBPS, 1.5 * MBPS)
TIER_360P_WEBM = ResolutionTier("360p", 0.2 * MBPS, 2.5 * MBPS)
TIER_480P = ResolutionTier("480p", 0.8 * MBPS, 2.7 * MBPS)
TIER_720P = ResolutionTier("720p", 1.5 * MBPS, 4.8 * MBPS)

#: Netflix offered a ladder of encoding rates per title (Akhshabi et al.).
NETFLIX_LADDER_BPS = (0.5 * MBPS, 1.0 * MBPS, 1.6 * MBPS, 2.6 * MBPS, 3.8 * MBPS)


def sample_youtube_duration(rng: random.Random) -> float:
    """Lognormal YouTube video duration, clipped to [30 s, 3600 s]."""
    duration = rng.lognormvariate(math.log(210.0), 0.75)
    return min(3600.0, max(30.0, duration))


def sample_netflix_duration(rng: random.Random) -> float:
    """Bimodal Netflix duration: TV episodes (~22 min) and films (~95 min)."""
    if rng.random() < 0.55:
        base = rng.gauss(22 * 60.0, 4 * 60.0)
    else:
        base = rng.gauss(95 * 60.0, 20 * 60.0)
    return min(4 * 3600.0, max(10 * 60.0, base))


class Catalog:
    """An ordered, named collection of videos."""

    def __init__(self, name: str, videos: Sequence[Video]) -> None:
        self.name = name
        self.videos: List[Video] = list(videos)
        if not self.videos:
            raise ValueError(f"catalog {name!r} is empty")

    def __len__(self) -> int:
        return len(self.videos)

    def __iter__(self):
        return iter(self.videos)

    def __getitem__(self, index: int) -> Video:
        return self.videos[index]

    def sample(self, n: int, rng: random.Random) -> List[Video]:
        """``n`` videos sampled without replacement (with, if n > size)."""
        if n <= len(self.videos):
            return rng.sample(self.videos, n)
        return [rng.choice(self.videos) for _ in range(n)]

    @property
    def mean_duration(self) -> float:
        return sum(v.duration for v in self.videos) / len(self.videos)

    @property
    def mean_rate_bps(self) -> float:
        return sum(v.encoding_rate_bps for v in self.videos) / len(self.videos)

    def rate_range(self) -> Tuple[float, float]:
        rates = [v.encoding_rate_bps for v in self.videos]
        return min(rates), max(rates)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        lo, hi = self.rate_range()
        return (
            f"Catalog({self.name!r}, n={len(self)}, "
            f"rates {lo / MBPS:.1f}-{hi / MBPS:.1f} Mbps)"
        )


def generate_youtube_catalog(
    name: str,
    size: int,
    tiers: Sequence[Tuple[ResolutionTier, float]],
    container: str,
    seed: int,
    duration_sampler: Callable[[random.Random], float] = sample_youtube_duration,
    min_duration: float = 0.0,
) -> Catalog:
    """Generate a YouTube-style catalog.

    ``tiers`` is a list of ``(tier, weight)`` pairs; each video draws its
    default resolution tier by weight and its rate uniformly inside it.
    """
    rng = random.Random(derive_seed(seed, f"catalog:{name}"))
    total_weight = sum(weight for _t, weight in tiers)
    videos = []
    for i in range(size):
        duration = duration_sampler(rng)
        if min_duration:
            duration = max(duration, min_duration)
        pick = rng.uniform(0.0, total_weight)
        acc = 0.0
        tier = tiers[-1][0]
        for candidate, weight in tiers:
            acc += weight
            if pick <= acc:
                tier = candidate
                break
        rate = tier.sample_rate(rng)
        # the mobile/HTML5 catalogs offer multiple renditions per video
        variants: Tuple[Variant, ...] = ()
        if container == "webm":
            lower = ("240p", max(0.2 * MBPS, rate * 0.45))
            higher = ("720p", min(4.8 * MBPS, rate * 2.2))
            variants = (lower, higher)
        videos.append(
            Video(
                video_id=f"{name.lower()}-{i:05d}",
                duration=duration,
                encoding_rate_bps=rate,
                resolution=tier.name,
                container=container,
                variants=variants,
            )
        )
    return Catalog(name, videos)


def generate_netflix_catalog(name: str, size: int, seed: int) -> Catalog:
    """Generate a Netflix-style catalog with the full encoding ladder."""
    rng = random.Random(derive_seed(seed, f"catalog:{name}"))
    videos = []
    ladder_names = ("480p-lo", "480p", "720p-lo", "720p", "1080p")
    for i in range(size):
        duration = sample_netflix_duration(rng)
        variants = tuple(zip(ladder_names, NETFLIX_LADDER_BPS))
        # default rendition: what the adaptive player settles on at good
        # bandwidth — the top of the ladder
        videos.append(
            Video(
                video_id=f"{name.lower()}-{i:05d}",
                duration=duration,
                encoding_rate_bps=NETFLIX_LADDER_BPS[-1],
                resolution=ladder_names[-1],
                container="silverlight",
                variants=variants,
            )
        )
    return Catalog(name, videos)
