"""32-bit TCP sequence-number arithmetic.

Internally the simulator uses *unwrapped* (unbounded) sequence numbers so
ordinary integer comparisons work; the wire/pcap layer wraps them modulo
2**32.  The analysis pipeline, which reads pcap files that may have been
produced by real stacks, uses :class:`SequenceUnwrapper` to recover
monotonically increasing byte offsets from wrapped sequence numbers.
"""

from __future__ import annotations

SEQ_MOD = 1 << 32
HALF_MOD = 1 << 31


def wrap(seq: int) -> int:
    """Fold an unwrapped sequence number onto the 32-bit wire space."""
    return seq % SEQ_MOD


def seq_lt(a: int, b: int) -> bool:
    """RFC 1982 serial comparison: is wrapped ``a`` before wrapped ``b``?"""
    return (a - b) % SEQ_MOD > HALF_MOD


def seq_leq(a: int, b: int) -> bool:
    """True when ``a <= b`` in 32-bit wrapping sequence space (RFC 1982)."""
    return a == b or seq_lt(a, b)


def seq_diff(a: int, b: int) -> int:
    """Signed distance from ``b`` to ``a`` on the wrapped circle."""
    d = (a - b) % SEQ_MOD
    return d - SEQ_MOD if d > HALF_MOD else d


class SequenceUnwrapper:
    """Recover unbounded sequence numbers from a wrapped 32-bit stream.

    Feed sequence numbers roughly in time order; each call returns the
    unwrapped value relative to the first number seen.  Tolerates
    out-of-order arrivals within half the sequence space.
    """

    def __init__(self) -> None:
        self._base: int = 0          # unwrapped value of the last sample
        self._last_wrapped: int = 0
        self._started = False

    def unwrap(self, seq: int) -> int:
        seq = seq % SEQ_MOD
        if not self._started:
            self._started = True
            self._base = seq
            self._last_wrapped = seq
            return seq
        delta = seq_diff(seq, self._last_wrapped)
        self._base += delta
        self._last_wrapped = seq
        return self._base

    @property
    def started(self) -> bool:
        return self._started
