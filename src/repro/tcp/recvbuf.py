"""Receive-side buffering: in-order queue, out-of-order store, window math.

The receive buffer is where the paper's client-side throttling lives: a
player that stops reading lets the buffer fill, the advertised window
shrinks to zero, and the server stalls — exactly the receive-window
oscillation of Figures 2(b) and 6(a).

``window = capacity - unread_in_order - out_of_order_held``; reading frees
space and re-opens the window.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple


class ReceiveBuffer:
    """Reassembly buffer for one connection."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity!r}")
        self.capacity = capacity
        self.rcv_nxt = 0                 # next expected stream offset
        self._inorder: Deque[Tuple[int, Optional[bytes]]] = deque()
        self._unread = 0                 # bytes readable by the application
        self._ooo: Dict[int, Tuple[int, Optional[bytes]]] = {}
        self._ooo_bytes = 0
        self.total_delivered = 0         # in-order bytes ever made readable
        self._right_edge = capacity      # highest promised rcv_nxt + window

    def set_rcv_nxt(self, offset: int) -> None:
        """Initialize the expected offset (after SYN consumes one number)."""
        self.rcv_nxt = offset
        self._right_edge = offset + self.capacity

    # -- window -------------------------------------------------------------

    @property
    def unread(self) -> int:
        return self._unread

    @property
    def ooo_bytes(self) -> int:
        return self._ooo_bytes

    @property
    def window(self) -> int:
        """Advertisable receive window in bytes.

        RFC 793 forbids moving the window's right edge (``rcv_nxt +
        window``) leftwards: data the peer was already promised space for
        must remain acceptable even as out-of-order bytes accumulate.  The
        raw free space is therefore clamped so the right edge is monotone.
        """
        raw = max(0, self.capacity - self._unread - self._ooo_bytes)
        if self.rcv_nxt + raw > self._right_edge:
            self._right_edge = self.rcv_nxt + raw
        return self._right_edge - self.rcv_nxt

    # -- segment arrival ----------------------------------------------------

    def offer(self, seq: int, length: int, payload: Optional[bytes]) -> int:
        """Offer segment data ``[seq, seq+length)`` to the buffer.

        Returns the number of *new in-order* bytes made readable (possibly
        including drained out-of-order data).  Data beyond the window is
        dropped; duplicates and overlaps are trimmed.
        """
        if length == 0:
            return 0
        rcv_nxt = self.rcv_nxt
        end = seq + length
        if end <= rcv_nxt:
            return 0  # complete duplicate
        # window right edge, inlining the ``window`` property (this runs
        # once per delivered data segment)
        raw = self.capacity - self._unread - self._ooo_bytes
        window_end = rcv_nxt + raw
        if window_end > self._right_edge:
            self._right_edge = window_end
        else:
            window_end = self._right_edge
        if seq >= window_end:
            return 0  # entirely beyond the advertised window
        # trim to window
        if end > window_end:
            if payload is not None:
                payload = payload[: window_end - seq]
            end = window_end
            length = end - seq
        if seq > rcv_nxt:
            self._store_ooo(seq, length, payload)
            return 0
        # overlaps rcv_nxt: trim the stale prefix
        if seq < rcv_nxt:
            skip = rcv_nxt - seq
            if payload is not None:
                payload = payload[skip:]
            seq = rcv_nxt
            length = end - seq
        delivered = self._append_inorder(length, payload)
        if self._ooo:
            delivered += self._drain_ooo()
        return delivered

    def _append_inorder(self, length: int, payload: Optional[bytes]) -> int:
        self._inorder.append((length, payload))
        self._unread += length
        self.rcv_nxt += length
        self.total_delivered += length
        return length

    def _store_ooo(self, seq: int, length: int, payload: Optional[bytes]) -> None:
        existing = self._ooo.get(seq)
        if existing is not None and existing[0] >= length:
            return  # duplicate out-of-order segment
        if existing is not None:
            self._ooo_bytes -= existing[0]
        self._ooo[seq] = (length, payload)
        self._ooo_bytes += length

    def _drain_ooo(self) -> int:
        """Move now-contiguous out-of-order segments into the in-order queue."""
        delivered = 0
        while self._ooo:
            # find a stored segment covering rcv_nxt
            hit = None
            for seq, (length, payload) in self._ooo.items():
                if seq <= self.rcv_nxt < seq + length:
                    hit = seq
                    break
                if seq + length <= self.rcv_nxt:
                    hit = seq  # fully stale; discard below
                    break
            if hit is None:
                break
            length, payload = self._ooo.pop(hit)
            self._ooo_bytes -= length
            end = hit + length
            if end <= self.rcv_nxt:
                continue  # stale
            if hit < self.rcv_nxt:
                skip = self.rcv_nxt - hit
                if payload is not None:
                    payload = payload[skip:]
                length = end - self.rcv_nxt
            delivered += self._append_inorder(length, payload)
        return delivered

    @property
    def has_gap(self) -> bool:
        """True when out-of-order data is being held (a hole exists)."""
        return bool(self._ooo)

    # -- application reads --------------------------------------------------

    def read(self, max_bytes: int) -> bytes:
        """Read up to ``max_bytes`` as real bytes (virtual regions zero-fill)."""
        parts: List[bytes] = []
        remaining = max_bytes
        while remaining > 0 and self._inorder:
            length, payload = self._inorder[0]
            take = min(length, remaining)
            if payload is None:
                parts.append(bytes(take))
            else:
                parts.append(payload[:take])
            if take == length:
                self._inorder.popleft()
            else:
                rest = None if payload is None else payload[take:]
                self._inorder[0] = (length - take, rest)
            self._unread -= take
            remaining -= take
        return b"".join(parts)

    def read_discard(self, max_bytes: int) -> int:
        """Consume up to ``max_bytes`` without materializing content."""
        consumed = 0
        remaining = max_bytes
        while remaining > 0 and self._inorder:
            length, payload = self._inorder[0]
            take = min(length, remaining)
            if take == length:
                self._inorder.popleft()
            else:
                rest = None if payload is None else payload[take:]
                self._inorder[0] = (length - take, rest)
            self._unread -= take
            remaining -= take
            consumed += take
        return consumed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ReceiveBuffer(rcv_nxt={self.rcv_nxt}, unread={self._unread}, "
            f"ooo={self._ooo_bytes}, window={self.window})"
        )
