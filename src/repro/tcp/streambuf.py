"""Append-only logical byte stream with real and virtual regions.

The TCP send buffer is a :class:`StreamBuffer`: applications append HTTP
headers as real bytes and video bodies as virtual byte counts.  The sender
reads arbitrary ranges back for (re)transmission; ranges that fall entirely
inside virtual regions yield ``None`` payloads (cheap), mixed ranges are
materialized with zero fill.

Acknowledged prefixes are trimmed to keep memory proportional to the
in-flight window, not the whole video.
"""

from __future__ import annotations

import bisect
from typing import List, Optional, Tuple

# Chunk: (start_offset, end_offset, data or None). data is None for virtual.
Chunk = Tuple[int, int, Optional[bytes]]


class StreamBuffer:
    """The logical outbound byte stream of one connection."""

    def __init__(self) -> None:
        self._chunks: List[Chunk] = []
        self._starts: List[int] = []  # parallel array for bisect
        self._length = 0              # total bytes ever appended
        self._trimmed = 0             # bytes discarded from the front

    # -- append -------------------------------------------------------------

    def append(self, data: bytes) -> None:
        """Append real bytes to the stream."""
        if not data:
            return
        start = self._length
        self._chunks.append((start, start + len(data), bytes(data)))
        self._starts.append(start)
        self._length += len(data)

    def append_virtual(self, n: int) -> None:
        """Append ``n`` virtual (content-free) bytes."""
        if n < 0:
            raise ValueError(f"cannot append {n} virtual bytes")
        if n == 0:
            return
        start = self._length
        # merge with a trailing virtual chunk to keep the list small
        if self._chunks and self._chunks[-1][2] is None and self._chunks[-1][1] == start:
            s, _e, _d = self._chunks[-1]
            self._chunks[-1] = (s, start + n, None)
        else:
            self._chunks.append((start, start + n, None))
            self._starts.append(start)
        self._length += n

    # -- inspect ------------------------------------------------------------

    @property
    def length(self) -> int:
        """Total bytes appended since creation (monotonic)."""
        return self._length

    @property
    def trimmed(self) -> int:
        """Bytes discarded from the front (already acknowledged)."""
        return self._trimmed

    def _chunk_index_for(self, offset: int) -> int:
        """Index of the chunk containing ``offset``."""
        i = bisect.bisect_right(self._starts, offset) - 1
        if i < 0:
            raise IndexError(f"offset {offset} below trimmed region")
        return i

    def is_virtual_range(self, start: int, end: int) -> bool:
        """True when ``[start, end)`` lies entirely in virtual chunks."""
        if start >= end:
            return True
        if start < self._trimmed or end > self._length:
            raise IndexError(
                f"range [{start}, {end}) outside [{self._trimmed}, {self._length})"
            )
        i = self._chunk_index_for(start)
        pos = start
        while pos < end:
            s, e, data = self._chunks[i]
            if data is not None:
                return False
            pos = e
            i += 1
        return True

    def read_range(self, start: int, end: int) -> Optional[bytes]:
        """Bytes in ``[start, end)``; ``None`` when fully virtual.

        Mixed ranges are materialized with zeros standing in for virtual
        bytes so real header bytes keep their exact stream positions.
        """
        if start >= end:
            return b""
        if start < self._trimmed or end > self._length:
            raise IndexError(
                f"range [{start}, {end}) outside [{self._trimmed}, {self._length})"
            )
        chunks = self._chunks
        if len(chunks) == 1 and chunks[0][2] is None:
            # steady state of a video transfer: after the real response
            # head is acked and trimmed, the whole live stream is one
            # virtual chunk — skip the per-chunk walk
            return None
        if self.is_virtual_range(start, end):
            return None
        parts: List[bytes] = []
        i = self._chunk_index_for(start)
        pos = start
        while pos < end:
            s, e, data = self._chunks[i]
            take_end = min(e, end)
            if data is None:
                parts.append(bytes(take_end - pos))
            else:
                parts.append(data[pos - s : take_end - s])
            pos = take_end
            i += 1
        return b"".join(parts)

    # -- trim ---------------------------------------------------------------

    def trim(self, upto: int) -> None:
        """Discard stream content below offset ``upto`` (cumulative ACK)."""
        if upto <= self._trimmed:
            return
        if upto > self._length:
            raise IndexError(f"cannot trim to {upto}; only {self._length} appended")
        keep_from = 0
        for idx, (s, e, data) in enumerate(self._chunks):
            if e > upto:
                keep_from = idx
                break
        else:
            keep_from = len(self._chunks)
        if keep_from:
            del self._chunks[:keep_from]
            del self._starts[:keep_from]
        # partially-covered head chunk: shrink it
        if self._chunks:
            s, e, data = self._chunks[0]
            if s < upto:
                if data is None:
                    self._chunks[0] = (upto, e, None)
                else:
                    self._chunks[0] = (upto, e, data[upto - s :])
                self._starts[0] = upto
        self._trimmed = upto

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StreamBuffer(length={self._length}, trimmed={self._trimmed}, "
            f"chunks={len(self._chunks)})"
        )
