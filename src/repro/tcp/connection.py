"""The TCP endpoint state machine.

Implements connection establishment (three-way handshake), reliable data
transfer with NewReno congestion control and receive-window flow control,
delayed ACKs, fast retransmit/recovery, RTO retransmission, zero-window
probing, and orderly FIN teardown — enough fidelity that the paper's
trace-level observations (receive-window throttling, block bursts without
an ACK clock, loss-induced block merging) emerge from the mechanism rather
than being scripted.

Sequence numbers are unwrapped integers internally; the pcap layer wraps
them to 32 bits.  Data is kept in a :class:`~repro.tcp.streambuf.
StreamBuffer`, so multi-megabyte video bodies are carried as *virtual*
bytes while HTTP headers remain real.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..simnet.node import Host
from ..simnet.scheduler import EventHandle, EventScheduler
from ..telemetry import current_recorder
from .congestion import NewRenoCongestion
from .constants import (
    ACK,
    DEFAULT_DELAYED_ACK,
    DEFAULT_DUPACK_THRESHOLD,
    DEFAULT_INIT_CWND_SEGMENTS,
    DEFAULT_MAX_REXMIT,
    DEFAULT_MAX_RTO,
    DEFAULT_MIN_RTO,
    DEFAULT_MSS,
    DEFAULT_RECV_BUFFER,
    DEFAULT_TIME_WAIT,
    FIN,
    PSH,
    RST,
    SYN,
)
from .recvbuf import ReceiveBuffer
from .rtt import RttEstimator
from .segment import TcpSegment
from .streambuf import StreamBuffer

#: Minimum number of back-to-back full-MSS virtual segments before
#: ``_try_send`` hands the burst to the link's vectorized
#: :meth:`~repro.simnet.link.Link.transmit_train` instead of emitting
#: one segment at a time.  Below this the per-burst setup costs more
#: than the per-segment dispatch it saves.
BURST_MIN_SEGS = 3

# Connection states.
CLOSED = "CLOSED"
SYN_SENT = "SYN_SENT"
SYN_RCVD = "SYN_RCVD"
ESTABLISHED = "ESTABLISHED"
FIN_WAIT_1 = "FIN_WAIT_1"
FIN_WAIT_2 = "FIN_WAIT_2"
CLOSE_WAIT = "CLOSE_WAIT"
CLOSING = "CLOSING"
LAST_ACK = "LAST_ACK"
TIME_WAIT = "TIME_WAIT"


@dataclass
class TcpConfig:
    """Tunable knobs of one endpoint."""

    mss: int = DEFAULT_MSS
    recv_buffer: int = DEFAULT_RECV_BUFFER
    init_cwnd_segments: int = DEFAULT_INIT_CWND_SEGMENTS
    min_rto: float = DEFAULT_MIN_RTO
    max_rto: float = DEFAULT_MAX_RTO
    delayed_ack: float = DEFAULT_DELAYED_ACK
    dupack_threshold: int = DEFAULT_DUPACK_THRESHOLD
    reset_cwnd_after_idle: bool = False
    time_wait: float = DEFAULT_TIME_WAIT
    #: Give up after this many *consecutive* RTO retransmissions without any
    #: forward progress and tear the connection down with reason
    #: ``"timeout"`` (Linux's tcp_retries2 analogue).  ``None`` retries
    #: forever.  With exponential backoff the default never fires on a
    #: merely lossy path — only when the peer or the link is truly gone.
    max_rexmit: Optional[int] = DEFAULT_MAX_REXMIT
    iss: int = 0
    #: Record (time, cwnd) samples on every segment sent — cheap congestion
    #: window instrumentation for analysis and teaching examples.
    trace_cwnd: bool = False


class TcpStats:
    """Per-connection counters."""

    __slots__ = (
        "segments_sent",
        "segments_received",
        "bytes_sent",
        "bytes_received",
        "retransmitted_segments",
        "retransmitted_bytes",
        "acks_sent",
        "dupacks_received",
        "window_probes",
    )

    def __init__(self) -> None:
        for name in self.__slots__:
            setattr(self, name, 0)

    def as_dict(self) -> dict:
        return {name: getattr(self, name) for name in self.__slots__}

    @property
    def retransmission_rate(self) -> float:
        """Fraction of data bytes sent that were retransmissions."""
        if self.bytes_sent == 0:
            return 0.0
        return self.retransmitted_bytes / self.bytes_sent


class TcpConnection:
    """One end of a TCP connection running on the simulator."""

    def __init__(
        self,
        host: Host,
        scheduler: EventScheduler,
        local_port: int,
        remote_ip: str,
        remote_port: int,
        config: Optional[TcpConfig] = None,
        name: str = "",
    ) -> None:
        self.host = host
        self.scheduler = scheduler
        self.local_ip = host.ip
        self.local_port = local_port
        self.remote_ip = remote_ip
        self.remote_port = remote_port
        self.config = config if config is not None else TcpConfig()
        self.name = name or f"{self.local_ip}:{local_port}"

        self.state = CLOSED
        self.stats = TcpStats()
        # Recorder captured once per connection: `_emit` runs per segment,
        # so the disabled path must cost a single attribute check.
        self._telemetry = current_recorder()
        # Clock alias for the per-segment paths: reading ``_clock._now``
        # is two attribute loads instead of a bound-method call.
        self._clock = scheduler.clock

        # send side
        self.iss = self.config.iss
        self.stream = StreamBuffer()
        self.snd_una_off = 0          # lowest unacknowledged data offset
        self.snd_nxt_off = 0          # next data offset to send
        self._high_water_off = 0      # highest offset ever transmitted
        self.snd_wnd = self.config.mss  # peer window until first real ACK
        self.cc = NewRenoCongestion(
            self.config.mss,
            self.config.init_cwnd_segments,
            self.config.reset_cwnd_after_idle,
        )
        self.rtt = RttEstimator(self.config.min_rto, self.config.max_rto)
        self._fin_pending = False
        self._fin_sent = False
        self._fin_acked = False
        self._fin_off: Optional[int] = None
        self._syn_acked = False
        self._dupacks = 0
        self._last_ack_seen = -1
        self._last_wnd_seen = -1
        self._rtt_probe: Optional[tuple] = None  # (ack_off_needed, sent_time)
        self._rexmit_count = 0        # consecutive RTOs without progress
        self._last_activity = scheduler.clock.now()

        # receive side
        self.irs: Optional[int] = None
        self.recvbuf = ReceiveBuffer(self.config.recv_buffer)
        self._peer_fin_off: Optional[int] = None
        self._peer_fin_processed = False
        self._adv_window_last = self.recvbuf.window
        self._segs_since_ack = 0

        # timers — the retransmit and delayed-ACK timers are *deadline
        # based*: arming/cancelling them (which happens on nearly every
        # segment) only stores a float, while at most one scheduler event
        # per timer is in flight and lazily re-arms itself (see
        # ``_restart_rexmit_timer``).
        self._rexmit_timer: Optional[EventHandle] = None
        self._rexmit_deadline: Optional[float] = None
        self._rexmit_event_time = 0.0
        self._delack_timer: Optional[EventHandle] = None
        self._delack_deadline: Optional[float] = None
        self._persist_timer: Optional[EventHandle] = None
        self._persist_backoff = 1.0
        self._timewait_timer: Optional[EventHandle] = None
        # Window-update threshold of ``_after_app_read``; both inputs are
        # fixed at construction.
        self._wupdate_threshold = min(
            2 * self.config.mss, self.recvbuf.capacity // 2
        )
        # Resolved lazily on first emit: the bottleneck link's bound
        # ``transmit`` for this flow's (src, dst) pair, skipping the
        # host -> network -> path hop on every segment.  Links are mutated
        # in place by faults (rate/up flips), never swapped, so the bound
        # method stays valid for the connection's lifetime.
        self._transmit = None
        # Resolved lazily by _burst_send: the link's bound transmit_train
        # when its vectorized path is enabled, False when unavailable.
        self._transmit_train = None

        # optional congestion-window trace
        self.cwnd_series = None
        if self.config.trace_cwnd:
            from ..simnet.monitor import TimeSeries

            self.cwnd_series = TimeSeries(f"{self.name}:cwnd")

        # Set by the streaming client on connections whose application
        # chain (HttpResponseStream -> player accounting) is eligible for
        # the batched-delivery in-order fast path (_fast_inorder_data).
        self._fast_app = False
        self._job = None

        # OFF-period fast-forward: the lazy deadline-based timers below
        # are the only state that could fire outside the scheduler heap,
        # so the connection vouches for them via a quiescence probe.
        scheduler.add_quiescence_probe(self.quiescent)

        # application callbacks
        self.on_connected: Optional[Callable[["TcpConnection"], None]] = None
        self.on_data: Optional[Callable[["TcpConnection"], None]] = None
        self.on_peer_fin: Optional[Callable[["TcpConnection"], None]] = None
        self.on_closed: Optional[Callable[["TcpConnection", str], None]] = None

        self._registered = False

    # ------------------------------------------------------------------ API

    def connect(self) -> None:
        """Active open: send SYN."""
        if self.state != CLOSED:
            raise RuntimeError(f"{self.name}: connect() in state {self.state}")
        self._register()
        self.state = SYN_SENT
        self._send_control(SYN, seq=self.iss)
        self._rtt_probe = ("syn", self.scheduler.clock.now())
        self._restart_rexmit_timer()

    def send(self, data: bytes) -> None:
        """Queue real application bytes for transmission."""
        self.stream.append(data)
        self._try_send()

    def send_virtual(self, n: int) -> None:
        """Queue ``n`` virtual (content-free) bytes for transmission."""
        self.stream.append_virtual(n)
        self._try_send()

    @property
    def available(self) -> int:
        """Bytes ready for the application to read."""
        return self.recvbuf.unread

    def recv(self, max_bytes: int) -> bytes:
        """Read up to ``max_bytes`` from the in-order receive queue."""
        data = self.recvbuf.read(max_bytes)
        if data:
            self._after_app_read()
        return data

    def recv_discard(self, max_bytes: int) -> int:
        """Consume up to ``max_bytes`` without materializing them."""
        n = self.recvbuf.read_discard(max_bytes)
        if n:
            self._after_app_read()
        return n

    def close(self) -> None:
        """Half-close: no more sends after queued data drains."""
        if self.state in (CLOSED, TIME_WAIT, LAST_ACK, FIN_WAIT_1, FIN_WAIT_2, CLOSING):
            return
        self._fin_pending = True
        if self.state == ESTABLISHED or self.state == SYN_RCVD:
            self.state = FIN_WAIT_1
        elif self.state == CLOSE_WAIT:
            self.state = LAST_ACK
        elif self.state == SYN_SENT:
            self._teardown("closed-before-established")
            return
        self._try_send()

    def abort(self) -> None:
        """Send RST and tear the connection down immediately."""
        if self.state != CLOSED:
            self._send_control(RST | ACK, seq=self._snd_nxt_seq())
        self._teardown("reset-by-local")

    # -------------------------------------------------------- derived state

    @property
    def established(self) -> bool:
        return self.state == ESTABLISHED

    @property
    def fully_closed(self) -> bool:
        return self.state == CLOSED

    @property
    def send_drained(self) -> bool:
        """All queued data (and FIN if pending) acknowledged."""
        data_done = self.snd_una_off >= self.stream.length
        fin_done = (not self._fin_pending) or self._fin_acked
        return data_done and fin_done

    @property
    def unacked_bytes(self) -> int:
        return self.snd_nxt_off - self.snd_una_off

    @property
    def unsent_bytes(self) -> int:
        return self.stream.length - self.snd_nxt_off

    @property
    def bytes_delivered(self) -> int:
        """In-order bytes ever made readable to the application."""
        return self.recvbuf.total_delivered

    def effective_window(self) -> int:
        """min(cwnd, peer window) minus bytes in flight."""
        wnd = min(self.cc.cwnd, self.snd_wnd)
        return max(0, int(wnd) - self.unacked_bytes)

    # ----------------------------------------------------------- quiescence

    def quiescent(self, until: float) -> bool:
        """Quiescence probe for the scheduler's OFF-period fast-forward.

        The retransmit and delayed-ACK timers are deadline-based: the
        armed deadline lives in a float while at most one lazily
        re-arming event sits in the heap at a time *no later than the
        deadline*.  That invariant means a deadline strictly before
        ``until`` (the next heap event) is impossible in normal
        operation — this probe turns the invariant into a checked
        refusal instead of a silent assumption.
        """
        if self.state == CLOSED:
            return True
        deadline = self._rexmit_deadline
        if deadline is not None and deadline < until:
            return False
        deadline = self._delack_deadline
        if deadline is not None and deadline < until:
            return False
        return True

    # --------------------------------------------------------- registration

    def _register(self) -> None:
        if not self._registered:
            self.host.register_connection(
                (self.local_port, self.remote_ip, self.remote_port),
                self.on_segment,
            )
            self._registered = True

    def _unregister(self) -> None:
        if self._registered:
            self.host.unregister_connection(
                (self.local_port, self.remote_ip, self.remote_port)
            )
            self._registered = False

    # --------------------------------------------------------- seq mapping

    def _seq_for_data(self, off: int) -> int:
        return self.iss + 1 + off

    def _snd_nxt_seq(self) -> int:
        seq = self._seq_for_data(self.snd_nxt_off)
        if self._fin_sent:
            seq += 1
        return seq

    def _ack_no(self) -> int:
        """The cumulative ACK we advertise to the peer."""
        if self.irs is None:
            return 0
        ack = self.irs + 1 + self.recvbuf.rcv_nxt
        if self._peer_fin_processed:
            ack += 1
        return ack

    # ------------------------------------------------------------- sending

    def _build_segment(
        self,
        flags: int,
        seq: int,
        payload_len: int = 0,
        payload: Optional[bytes] = None,
        retransmission: bool = False,
    ) -> TcpSegment:
        rb = self.recvbuf
        # inline ReceiveBuffer.window (monotone right edge); this runs
        # once per segment sent
        rcv_nxt = rb.rcv_nxt
        edge = rcv_nxt + rb.capacity - rb._unread - rb._ooo_bytes
        if edge > rb._right_edge:
            rb._right_edge = edge
        window = rb._right_edge - rcv_nxt
        self._adv_window_last = window
        # inline _ack_no(): this runs once per segment sent
        irs = self.irs
        if irs is None:
            ack = 0
        else:
            ack = irs + 1 + rb.rcv_nxt
            if self._peer_fin_processed:
                ack += 1
        if payload is None and not retransmission and not (flags & (SYN | FIN | RST)):
            # Retransmit-free virtual-payload path (video body segments and
            # pure ACKs): reuse a pooled segment; the delivering link
            # releases it once the receiver has processed it.
            return TcpSegment.acquire(
                self.local_ip,
                self.local_port,
                self.remote_ip,
                self.remote_port,
                seq=seq,
                ack=ack,
                flags=flags,
                window=window,
                payload_len=payload_len,
                sent_at=self._clock._now,
            )
        return TcpSegment(
            self.local_ip,
            self.local_port,
            self.remote_ip,
            self.remote_port,
            seq=seq,
            ack=ack,
            flags=flags,
            window=window,
            payload_len=payload_len,
            payload=payload,
            sent_at=self._clock._now,
            retransmission=retransmission,
        )

    def _emit(self, seg: TcpSegment) -> None:
        stats = self.stats
        stats.segments_sent += 1
        plen = seg.payload_len
        if plen:
            stats.bytes_sent += plen
            if seg.retransmission:
                stats.retransmitted_segments += 1
                stats.retransmitted_bytes += plen
        elif seg.flags == ACK:  # pure ACK
            stats.acks_sent += 1
        telemetry = self._telemetry
        if telemetry.enabled:
            telemetry.inc("tcp.segments_sent")
            if plen:
                telemetry.inc("tcp.bytes_sent", plen)
                if seg.retransmission:
                    telemetry.inc("tcp.retransmits")
        self._last_activity = self._clock._now
        if self.cwnd_series is not None and (
            not self.cwnd_series.values
            or self.cwnd_series.values[-1] != self.cc.cwnd
        ):
            self.cwnd_series.append(self._last_activity, float(self.cc.cwnd))
        transmit = self._transmit
        if transmit is None:
            network = self.host.network
            if network is None:
                self.host.send_segment(seg)  # raises AddressError
                return
            transmit = self._transmit = network.transmit_fn(
                self.local_ip, self.remote_ip
            )
        transmit(seg)

    def _send_control(self, flags: int, seq: int) -> None:
        self._emit(self._build_segment(flags, seq))

    def _try_send(self) -> None:
        """Transmit as much queued data as windows permit; handle FIN."""
        if self.state not in (ESTABLISHED, FIN_WAIT_1, CLOSE_WAIT, LAST_ACK, CLOSING):
            return
        if not self._syn_acked:
            return
        cc = self.cc
        idle = self._clock._now - self._last_activity
        if idle > 0:
            cc.on_idle(idle, self.rtt.rto)
        stream = self.stream
        mss = self.config.mss
        sent_any = False
        while True:
            off = self.snd_nxt_off
            unsent = stream.length - off
            if unsent <= 0:
                break
            # effective window: min(cwnd, peer window) minus in flight
            wnd = cc.cwnd
            snd_wnd = self.snd_wnd
            if snd_wnd < wnd:
                wnd = snd_wnd
            window = int(wnd) - (off - self.snd_una_off)
            take = mss if mss < unsent else unsent
            if window < take:
                take = window
            # sender-side silly-window avoidance: don't send a runt unless
            # it is the final piece of the queued stream
            if take <= 0 or (take < mss and take < unsent):
                if off == self.snd_una_off and snd_wnd < mss:
                    # receiver-limited with nothing in flight: only a window
                    # probe can restart the transfer
                    self._start_persist()
                break
            if take == mss and window >= BURST_MIN_SEGS * mss:
                k = (window if window < unsent else unsent) // mss
                if k >= BURST_MIN_SEGS and self._burst_send(off, k):
                    sent_any = True
                    continue
            payload = stream.read_range(off, off + take)
            flags = ACK | (PSH if take == unsent else 0)
            # after a timeout snd_nxt rolls back (go-back-N), so offsets
            # below the high-water mark are retransmissions
            is_retx = off < self._high_water_off
            seg = self._build_segment(
                flags,
                self.iss + 1 + off,
                payload_len=take,
                payload=payload,
                retransmission=is_retx,
            )
            off += take
            self.snd_nxt_off = off
            if off > self._high_water_off:
                self._high_water_off = off
            if self._rtt_probe is None and not is_retx:
                self._rtt_probe = (off, self._clock._now)
            self._emit(seg)
            sent_any = True
        # FIN: everything sent, nothing more queued
        if (
            self._fin_pending
            and not self._fin_sent
            and self.snd_nxt_off >= self.stream.length
        ):
            self._fin_off = self.stream.length
            self._fin_sent = True
            self._send_control(FIN | ACK, seq=self._seq_for_data(self._fin_off))
            sent_any = True
        if sent_any:
            self._delack_deadline = None  # data segments carry the ACK
            if self._rexmit_deadline is None:
                self._restart_rexmit_timer()

    def _burst_send(self, off: int, k: int) -> bool:
        """Send ``k`` back-to-back full-MSS virtual segments as one train.

        The bulk-transfer strategy (and any cwnd-opened sender) emits
        long runs of identical segments; building them in one pass and
        handing the whole burst to :meth:`Link.transmit_train` removes
        the per-segment emit/transmit dispatch.  Byte-identical to the
        scalar loop: the advertised window and ack are frozen across the
        burst (nothing on the receive side changes between back-to-back
        builds), PSH lands on the stream's final segment exactly as the
        per-segment flag computation does, and the RTT probe samples the
        first segment.  Returns ``False`` — leaving no trace — when any
        precondition fails; the caller falls back to the scalar path.
        """
        if off < self._high_water_off:
            return False  # retransmissions take the scalar path
        if self._telemetry.enabled or self.cwnd_series is not None:
            return False
        transmit_train = self._transmit_train
        if transmit_train is None:
            transmit = self._transmit
            if transmit is None:
                return False
            link = getattr(transmit, "__self__", None)
            if link is None or not getattr(link, "_vector", False):
                self._transmit_train = False
                return False
            transmit_train = getattr(link, "transmit_train", None)
            if transmit_train is None:
                transmit_train = False
            self._transmit_train = transmit_train
        if transmit_train is False:
            return False
        stream = self.stream
        mss = self.config.mss
        end = off + k * mss
        if stream.read_range(off, end) is not None:
            return False  # real bytes in range: scalar path materializes
        # advertised window / ack, mirroring _build_segment (constant
        # across the burst)
        rb = self.recvbuf
        rcv_nxt = rb.rcv_nxt
        edge = rcv_nxt + rb.capacity - rb._unread - rb._ooo_bytes
        if edge > rb._right_edge:
            rb._right_edge = edge
        window = rb._right_edge - rcv_nxt
        self._adv_window_last = window
        irs = self.irs
        if irs is None:
            ack = 0
        else:
            ack = irs + 1 + rcv_nxt
            if self._peer_fin_processed:
                ack += 1
        now = self._clock._now
        total = stream.length
        seq0 = self.iss + 1 + off
        local_ip = self.local_ip
        local_port = self.local_port
        remote_ip = self.remote_ip
        remote_port = self.remote_port
        acquire = TcpSegment.acquire
        segs = []
        append = segs.append
        for i in range(k):
            o = off + i * mss
            append(acquire(
                local_ip, local_port, remote_ip, remote_port,
                seq=seq0 + i * mss,
                ack=ack,
                flags=ACK | PSH if o + mss == total else ACK,
                window=window,
                payload_len=mss,
                sent_at=now,
            ))
        stats = self.stats
        stats.segments_sent += k
        stats.bytes_sent += k * mss
        self._last_activity = now
        self.snd_nxt_off = end
        self._high_water_off = end
        if self._rtt_probe is None:
            self._rtt_probe = (off + mss, now)
        transmit_train(segs)
        return True

    # ---------------------------------------------------------- retransmit
    #
    # The timer is restarted on every ACK that leaves data outstanding, so
    # an eager cancel-and-reschedule would allocate a handle and churn the
    # heap tens of thousands of times per session.  Instead the restart
    # stores ``_rexmit_deadline`` (a float) and keeps at most one event in
    # flight: when the event fires before the deadline it re-arms itself
    # at the current deadline.  An actual timeout therefore still fires at
    # exactly ``restart_time + rto`` — the same absolute float the eager
    # scheme produced.

    def _restart_rexmit_timer(self) -> None:
        rto = self.rtt.rto
        deadline = self._clock._now + rto
        self._rexmit_deadline = deadline
        timer = self._rexmit_timer
        if timer is None:
            self._rexmit_timer = self.scheduler.after(
                rto, self._rexmit_tick, label=f"{self.name}:rto"
            )
            self._rexmit_event_time = deadline
        elif self._rexmit_event_time > deadline:
            # the RTO shrank below the in-flight event's time (fresh
            # samples after a backoff reset): bring the event forward so
            # the timeout cannot fire late
            timer.cancel()
            self._rexmit_timer = self.scheduler.at(
                deadline, self._rexmit_tick, label=f"{self.name}:rto"
            )
            self._rexmit_event_time = deadline

    def _cancel_rexmit_timer(self) -> None:
        # the in-flight event, if any, dies lazily at its scheduled time
        self._rexmit_deadline = None

    def _rexmit_tick(self) -> None:
        self._rexmit_timer = None
        deadline = self._rexmit_deadline
        if deadline is None:
            return  # cancelled since the event was scheduled
        if self._clock._now < deadline:
            # the deadline moved while we were queued: re-arm at it
            self._rexmit_timer = self.scheduler.at(
                deadline, self._rexmit_tick, label=f"{self.name}:rto"
            )
            self._rexmit_event_time = deadline
            return
        self._on_rexmit_timeout()

    def _outstanding(self) -> bool:
        if self.snd_nxt_off > self.snd_una_off:  # unacked data
            return True
        if self._fin_sent and not self._fin_acked:
            return True
        return self.state in (SYN_SENT, SYN_RCVD) and not self._syn_acked

    def _on_rexmit_timeout(self) -> None:
        if not self._outstanding():
            self._rexmit_deadline = None
            return
        self._rexmit_count += 1
        if (self.config.max_rexmit is not None
                and self._rexmit_count > self.config.max_rexmit):
            self._teardown("timeout")
            return
        self.rtt.backoff()
        self._rtt_probe = None
        if self.state == SYN_SENT:
            self._send_control(SYN, seq=self.iss)
        elif self.state == SYN_RCVD and not self._syn_acked:
            self._send_control(SYN | ACK, seq=self.iss)
        elif self.unacked_bytes > 0:
            self.cc.on_timeout(self.unacked_bytes)
            self._dupacks = 0
            self._rtt_probe = None
            # go-back-N: without SACK the sender cannot know which of the
            # outstanding segments were lost, so it restarts from snd_una
            # in slow start (classic Reno timeout behaviour)
            self.snd_nxt_off = self.snd_una_off
            self._try_send()
        elif self._fin_sent and not self._fin_acked:
            assert self._fin_off is not None
            self._send_control(FIN | ACK, seq=self._seq_for_data(self._fin_off))
        self._restart_rexmit_timer()

    def _retransmit_one(self, off: int) -> None:
        """Retransmit one MSS of data starting at stream offset ``off``."""
        end = min(off + self.config.mss, max(self.snd_nxt_off, off))
        if end <= off:
            return
        payload = self.stream.read_range(off, end)
        flags = ACK | (PSH if end == self.stream.length else 0)
        seg = self._build_segment(
            flags,
            self._seq_for_data(off),
            payload_len=end - off,
            payload=payload,
            retransmission=True,
        )
        self._rtt_probe = None  # Karn: no sampling across retransmissions
        self._emit(seg)

    # ---------------------------------------------------------- persisting

    def _start_persist(self) -> None:
        if self._persist_timer is not None:
            return
        interval = min(self.rtt.rto * self._persist_backoff, 60.0)
        self._persist_timer = self.scheduler.after(
            interval, self._on_persist, label=f"{self.name}:persist"
        )

    def _cancel_persist(self) -> None:
        if self._persist_timer is not None:
            self._persist_timer.cancel()
            self._persist_timer = None
        self._persist_backoff = 1.0

    def _on_persist(self) -> None:
        self._persist_timer = None
        if self.snd_wnd >= self.config.mss or self.state == CLOSED:
            return
        if self.unsent_bytes > 0:
            # 1-byte window probe carrying the next stream byte
            off = self.snd_nxt_off
            payload = self.stream.read_range(off, off + 1)
            seg = self._build_segment(
                ACK,
                self._seq_for_data(off),
                payload_len=1,
                payload=payload,
                retransmission=True,
            )
            self.stats.window_probes += 1
            self._emit(seg)
        self._persist_backoff = min(self._persist_backoff * 2.0, 64.0)
        self._start_persist()

    # -------------------------------------------------------------- ACKing

    def _ack_now(self) -> None:
        self._delack_deadline = None
        self._segs_since_ack = 0
        self._send_control(ACK, seq=self._snd_nxt_seq())

    # The delayed-ACK timer uses the same deadline pattern as the
    # retransmit timer: scheduling and cancelling are float stores; a
    # single lazily re-arming event fires the ACK at exactly the time the
    # eager schedule would have.

    def _schedule_delack(self) -> None:
        if self._delack_deadline is None:
            delay = self.config.delayed_ack
            self._delack_deadline = self._clock._now + delay
            if self._delack_timer is None:
                self._delack_timer = self.scheduler.after(
                    delay, self._delack_tick, label=f"{self.name}:delack"
                )

    def _cancel_delack(self) -> None:
        # the in-flight event, if any, dies (or re-arms) lazily
        self._delack_deadline = None

    def _delack_tick(self) -> None:
        self._delack_timer = None
        deadline = self._delack_deadline
        if deadline is None:
            return  # cancelled: the ACK was sent by other means
        if self._clock._now < deadline:
            self._delack_timer = self.scheduler.at(
                deadline, self._delack_tick, label=f"{self.name}:delack"
            )
            return
        self._delack_deadline = None
        self._segs_since_ack = 0
        self._send_control(ACK, seq=self._snd_nxt_seq())

    def _after_app_read(self) -> None:
        """Send a window update when the application frees enough space."""
        rb = self.recvbuf
        # inline ReceiveBuffer.window (monotone right edge); this runs
        # after every application read
        rcv_nxt = rb.rcv_nxt
        edge = rcv_nxt + rb.capacity - rb._unread - rb._ooo_bytes
        if edge > rb._right_edge:
            rb._right_edge = edge
        window = rb._right_edge - rcv_nxt
        last = self._adv_window_last
        mss = self.config.mss
        if last < mss and window >= mss:
            self._ack_now()
        elif window - last >= self._wupdate_threshold:
            self._ack_now()

    # ------------------------------------------- batched-delivery fast path

    def _fast_inorder_data(self, seg: TcpSegment) -> int:
        """Steady-state receive path for batched train deliveries.

        Called by :meth:`~repro.simnet.link.Link._deliver_train` instead
        of the generic demux.  Handles exactly one case — an in-order
        data segment with a no-op ACK arriving mid-body on an idle-send
        connection whose application drains greedily — and replicates
        the generic path's writes in their exact order, so the results
        (including every ACK's timing, window and the advertised-window
        bookkeeping) are bit-equal.  Every guard below is a pure read:
        returning ``False`` leaves no trace and the caller re-dispatches
        through the generic :meth:`on_segment` path.

        Returns ``0`` (refused), ``1`` (handled), or ``2`` (handled and
        a *new* timer event entered the scheduler heap — the batching
        caller must re-tighten its delivery bound; see
        :meth:`~repro.simnet.link.Link._deliver_train`).
        """
        # -- guards (reads only) ------------------------------------------
        if not self._fast_app or self.state != ESTABLISHED:
            return False
        job = self._job
        if job is not None and job.on_data is not None:
            return False  # throttled reader (PullPlayer): generic drain
        flags = seg.flags
        if flags != ACK and flags != ACK | PSH:
            return False
        plen = seg.payload_len
        if plen == 0:
            return False
        rb = self.recvbuf
        if rb._ooo or rb._unread or self._peer_fin_off is not None:
            return False
        off = seg.seq - self.irs - 1
        if off != rb.rcv_nxt:
            return False
        una = self.snd_una_off
        if seg.ack - self.iss - 1 != una or self.snd_nxt_off != una:
            return False
        if self._fin_sent or self._fin_pending or self.stream._length != una:
            return False
        if self._persist_timer is not None or self._persist_backoff != 1.0:
            return False
        if self._telemetry.enabled or self.cwnd_series is not None:
            return False
        transmit = self._transmit
        if transmit is None:
            return False  # no emitted segment yet resolved the link
        # window acceptance, mirroring ReceiveBuffer.offer's in-order path
        window_end = off + rb.capacity - rb._ooo_bytes  # _unread == 0
        if window_end < rb._right_edge:
            window_end = rb._right_edge
        if off + plen > window_end:
            return False  # would be trimmed: generic path handles it
        hs = self.http_stream
        if hs._response is None or hs._headbuf:
            return False  # parsing a head: generic drain
        if hs._body_expected - hs._body_received <= plen:
            return False  # response completes: generic drain + callbacks
        # -- commit (the generic path's writes, in order) -----------------
        now = self._clock._now
        self.stats.segments_received += 1
        self._last_activity = now
        # _process_ack reduces to window bookkeeping: the ACK duplicates
        # snd_una with nothing in flight, persist is idle and nothing is
        # queued, so no other branch can be taken.
        wnd = seg.window
        self._last_wnd_seen = wnd
        self.snd_wnd = wnd
        # ReceiveBuffer.offer, in-order append (acceptance proven above)
        if rb._right_edge < window_end:
            rb._right_edge = window_end
        rb._inorder.append((plen, seg.payload))
        rb._unread = plen
        rb.rcv_nxt = off + plen
        rb.total_delivered += plen
        # every-2nd-segment ACK policy of _segment_in_open_states
        new_timer = False
        n = self._segs_since_ack + 1
        if n >= 2:
            # _ack_now inlined: build the pooled pure ACK with the
            # window/ack fields _build_segment would compute (the
            # receive buffer still holds the undrained chunk, so the
            # advertised window reflects _unread == plen exactly as the
            # generic ordering has it) and emit through the cached link
            # transmit.
            self._delack_deadline = None
            self._segs_since_ack = 0
            rcv_nxt = rb.rcv_nxt
            edge = rcv_nxt + rb.capacity - plen - rb._ooo_bytes
            if edge > rb._right_edge:
                rb._right_edge = edge
            window = rb._right_edge - rcv_nxt
            self._adv_window_last = window
            stats = self.stats
            stats.segments_sent += 1
            stats.acks_sent += 1
            self._last_activity = now
            transmit(TcpSegment.acquire(
                self.local_ip, self.local_port,
                self.remote_ip, self.remote_port,
                seq=self.iss + 1 + una,
                ack=self.irs + 1 + rcv_nxt,
                flags=ACK,
                window=window,
                payload_len=0,
                sent_at=now,
            ))
        else:
            self._segs_since_ack = n
            new_timer = self._delack_timer
            self._schedule_delack()
            new_timer = self._delack_timer is not new_timer
        # application drain: HttpResponseStream.take consuming the single
        # in-order chunk mid-body — read_discard, then _after_app_read,
        # then _account_body, exactly as the generic chain orders them.
        rb._inorder.clear()
        rb._unread = 0
        rcv_nxt = rb.rcv_nxt
        edge = rcv_nxt + rb.capacity - rb._ooo_bytes
        if edge > rb._right_edge:
            rb._right_edge = edge
        window = rb._right_edge - rcv_nxt
        last = self._adv_window_last
        mss = self.config.mss
        if (last < mss and window >= mss) or (
            window - last >= self._wupdate_threshold
        ):
            # _ack_now inlined, as above; the window update advertises
            # the freshly drained buffer (_unread is 0 again, matching
            # the recompute _build_segment would do).
            self._delack_deadline = None
            self._segs_since_ack = 0
            self._adv_window_last = window
            stats = self.stats
            stats.segments_sent += 1
            stats.acks_sent += 1
            self._last_activity = now
            transmit(TcpSegment.acquire(
                self.local_ip, self.local_port,
                self.remote_ip, self.remote_port,
                seq=self.iss + 1 + una,
                ack=self.irs + 1 + rcv_nxt,
                flags=ACK,
                window=window,
                payload_len=0,
                sent_at=now,
            ))
        hs._body_received += plen
        hs.total_body_bytes += plen
        hs.on_body_bytes(plen)
        return 2 if new_timer else 1

    def _fast_pure_ack(self, seg: TcpSegment) -> int:
        """Steady-state sender-side path for a cumulative pure ACK.

        The mirror image of :meth:`_fast_inorder_data`: called by the
        link's batched delivery for zero-payload segments, it handles
        exactly one case — a pure ACK that advances ``snd_una`` on an
        ESTABLISHED connection outside recovery, with persist idle and
        no FIN in either direction — and replicates the
        ``on_segment`` -> ``_process_ack`` writes in their exact order.
        ``_try_send`` stays a real call (transmitting the window the ACK
        opened is the actual work); only the dispatch and bookkeeping
        around it are inlined.  Every guard is a pure read, so a
        ``False`` return leaves no trace.

        Returns ``0``/``1``/``2`` with the same meaning as
        :meth:`_fast_inorder_data`: ``2`` flags a newly created
        retransmit or persist timer the batching caller must respect.
        """
        # -- guards (reads only) ------------------------------------------
        if self.state != ESTABLISHED or seg.flags != ACK or seg.payload_len:
            return False
        ack_off = seg.ack - self.iss - 1
        una = self.snd_una_off
        if ack_off <= una or ack_off > self.snd_nxt_off:
            return False  # dupack / stale / beyond-snd_nxt: generic path
        if self._fin_sent or self._fin_pending or self._peer_fin_off is not None:
            return False
        cc = self.cc
        if cc.in_recovery:
            return False  # partial-ACK retransmit logic: generic path
        if self._persist_timer is not None or self._persist_backoff != 1.0:
            return False
        # -- commit (the generic path's writes, in order) -----------------
        self.stats.segments_received += 1
        now = self._clock._now
        self._last_activity = now
        # _process_ack window bookkeeping (window_grew only matters in
        # the dupack branch, which the advance guard excludes)
        wnd = seg.window
        self._last_wnd_seen = wnd
        self.snd_wnd = wnd
        newly = ack_off - una
        self.snd_una_off = ack_off
        self.stream.trim(ack_off)
        self._dupacks = 0
        self._rexmit_count = 0
        self.rtt.reset_backoff()
        probe = self._rtt_probe
        if probe is not None and probe[0] != "syn" and ack_off >= probe[0]:
            self.rtt.sample(now - probe[1])
            self._rtt_probe = None
        snd_nxt = self.snd_nxt_off
        # cc.on_ack outside recovery, inlined (newly > 0 proven above),
        # gated by the RFC 2861-style cwnd-limited validation
        if (snd_nxt - ack_off) + newly >= cc.cwnd - self.config.mss:
            mss = cc.mss
            if cc.cwnd < cc.ssthresh:  # slow start, appropriate byte counting
                cc.cwnd += newly if newly < mss else mss
            else:
                cc.cwnd += max(1, mss * mss // cc.cwnd)
        rexmit_before = self._rexmit_timer
        if snd_nxt > ack_off:
            self._restart_rexmit_timer()
        else:
            self._rexmit_deadline = None  # inlined _cancel_rexmit_timer
        if self.stream._length > snd_nxt:
            self._try_send()
        if self._rexmit_timer is not rexmit_before or self._persist_timer is not None:
            return 2
        return 1

    # ----------------------------------------------------- segment arrival

    def on_segment(self, seg: TcpSegment) -> None:
        """Entry point for segments delivered by the host."""
        self.stats.segments_received += 1
        self._last_activity = self._clock._now
        if seg.flags & RST:
            self._teardown("reset-by-peer")
            return
        state = self.state
        if state == SYN_SENT:
            self._segment_in_syn_sent(seg)
        elif state == SYN_RCVD:
            self._segment_in_syn_rcvd(seg)
        elif state != CLOSED:
            self._segment_in_open_states(seg)

    # -- handshake ------------------------------------------------------------

    def _segment_in_syn_sent(self, seg: TcpSegment) -> None:
        if not (seg.is_syn and seg.is_ack):
            return
        if seg.ack != self.iss + 1:
            return
        self.irs = seg.seq
        self.recvbuf.set_rcv_nxt(0)
        self.snd_wnd = seg.window
        self._syn_acked = True
        self._rexmit_count = 0
        if self._rtt_probe and self._rtt_probe[0] == "syn":
            self.rtt.sample(self.scheduler.clock.now() - self._rtt_probe[1])
            self._rtt_probe = None
        self._cancel_rexmit_timer()
        self.state = ESTABLISHED
        self._ack_now()
        if self.on_connected:
            self.on_connected(self)
        self._try_send()

    def accept_syn(self, seg: TcpSegment) -> None:
        """Passive open: process the client's SYN (called by the listener)."""
        self._register()
        self.irs = seg.seq
        self.recvbuf.set_rcv_nxt(0)
        self.snd_wnd = seg.window
        self.state = SYN_RCVD
        self._send_control(SYN | ACK, seq=self.iss)
        self._rtt_probe = ("syn", self.scheduler.clock.now())
        self._restart_rexmit_timer()

    def _segment_in_syn_rcvd(self, seg: TcpSegment) -> None:
        if seg.is_syn and not seg.is_ack:
            # duplicate SYN: re-send SYN-ACK
            self._send_control(SYN | ACK, seq=self.iss)
            return
        if seg.is_ack and seg.ack >= self.iss + 1:
            self._syn_acked = True
            self._rexmit_count = 0
            if self._rtt_probe and self._rtt_probe[0] == "syn":
                self.rtt.sample(self.scheduler.clock.now() - self._rtt_probe[1])
                self._rtt_probe = None
            self._cancel_rexmit_timer()
            self.state = ESTABLISHED
            self.snd_wnd = seg.window
            if self.on_connected:
                self.on_connected(self)
            # the handshake ACK may carry data (or the request follows)
            if seg.payload_len or seg.is_fin:
                self._segment_in_open_states(seg)
            else:
                self._try_send()

    # -- established and closing states ----------------------------------------

    def _segment_in_open_states(self, seg: TcpSegment) -> None:
        flags = seg.flags  # bit tests beat the is_* properties on this hot path
        if flags & SYN:
            # stale duplicate SYN-ACK: just re-ACK
            self._ack_now()
            return
        if flags & ACK:
            self._process_ack(seg)
        if self.state == CLOSED:
            return
        delivered = 0
        needs_ack = False
        plen = seg.payload_len
        if plen:
            rb = self.recvbuf
            data_off = seg.seq - (self.irs + 1)
            before_gap = bool(rb._ooo)  # inlined ReceiveBuffer.has_gap
            delivered = rb.offer(data_off, plen, seg.payload)
            if rb._ooo or before_gap or delivered == 0:
                # out-of-order, gap-filling, or out-of-window: ACK right away
                self._ack_now()
            else:
                n = self._segs_since_ack + 1
                if n >= 2:
                    self._ack_now()
                else:
                    self._segs_since_ack = n
                    self._schedule_delack()
        if flags & FIN:
            fin_off = (seg.seq + seg.payload_len) - (self.irs + 1)
            self._peer_fin_off = fin_off
            needs_ack = True
        if self._peer_fin_off is not None and not self._peer_fin_processed:
            if self.recvbuf.rcv_nxt >= self._peer_fin_off:
                self._peer_fin_processed = True
                self._on_peer_fin_processed()
                needs_ack = True
        if needs_ack:
            self._ack_now()
        if delivered and self.on_data:
            self.on_data(self)

    def _on_peer_fin_processed(self) -> None:
        if self.state == ESTABLISHED:
            self.state = CLOSE_WAIT
        elif self.state == FIN_WAIT_1:
            self.state = CLOSING if not self._fin_acked else TIME_WAIT
        elif self.state == FIN_WAIT_2:
            self.state = TIME_WAIT
        if self.state == TIME_WAIT:
            self._enter_time_wait()
        if self.on_peer_fin:
            self.on_peer_fin(self)

    def _process_ack(self, seg: TcpSegment) -> None:
        ack_off = seg.ack - (self.iss + 1)
        fin_ack_off = None
        if self._fin_sent:
            assert self._fin_off is not None
            fin_ack_off = self._fin_off + 1
        # Window bookkeeping.  A *window update* (advertised window grew,
        # e.g. the player just drained its buffer) must not count as a
        # duplicate ACK; a shrinking window merely reflects out-of-order
        # data held at the receiver and does not disqualify the dup-ACK.
        wnd = seg.window
        window_grew = wnd > self._last_wnd_seen >= 0
        self._last_wnd_seen = wnd
        self.snd_wnd = wnd
        if wnd >= self.config.mss and (
            self._persist_timer is not None or self._persist_backoff != 1.0
        ):
            # a usable window opened: stop probing and clear probe backoff
            self._cancel_persist()

        effective_ack = ack_off
        fin_now_acked = False
        if fin_ack_off is not None and ack_off >= fin_ack_off:
            effective_ack = self._fin_off
            fin_now_acked = True
        if effective_ack > self.snd_nxt_off:
            # window probes delivered bytes past snd_nxt
            self.snd_nxt_off = min(effective_ack, self.stream.length)

        if effective_ack > self.snd_una_off:
            newly = effective_ack - self.snd_una_off
            self.snd_una_off = effective_ack
            self.stream.trim(self.snd_una_off)
            self._dupacks = 0
            self._rexmit_count = 0
            self.rtt.reset_backoff()
            if self._rtt_probe and self._rtt_probe[0] != "syn":
                probe_end, t0 = self._rtt_probe
                if effective_ack >= probe_end:
                    self.rtt.sample(self._clock._now - t0)
                    self._rtt_probe = None
            # RFC 2861-style validation: only grow cwnd when the flight was
            # actually limited by it (the acked data probed the path)
            flight_before = (self.snd_nxt_off - self.snd_una_off) + newly
            cwnd_limited = flight_before >= self.cc.cwnd - self.config.mss
            if self.cc.in_recovery and effective_ack < self._recover_off():
                # NewReno partial ACK: retransmit the next hole immediately
                self.cc.on_ack(newly, self._seq_for_data(effective_ack),
                               cwnd_limited)
                self._retransmit_one(self.snd_una_off)
            else:
                self.cc.on_ack(newly, self._seq_for_data(effective_ack),
                               cwnd_limited)
            if self._outstanding():
                self._restart_rexmit_timer()
            else:
                self._cancel_rexmit_timer()
        elif (
            seg.flags == ACK
            and seg.payload_len == 0  # inlined is_pure_ack
            and ack_off == self.snd_una_off
            and self.snd_nxt_off > self.snd_una_off
            and not window_grew
        ):
            self._dupacks += 1
            self.stats.dupacks_received += 1
            if self._dupacks == self.config.dupack_threshold:
                if self.cc.on_dupacks(self.unacked_bytes, self._seq_for_data(self.snd_nxt_off)):
                    self._retransmit_one(self.snd_una_off)
                    self._restart_rexmit_timer()
            elif self._dupacks > self.config.dupack_threshold:
                self.cc.on_extra_dupack()

        if fin_now_acked and not self._fin_acked:
            self._fin_acked = True
            self._on_local_fin_acked()
        # _try_send is a no-op without unsent data or an unsent FIN (idle
        # restart cannot trigger here: on_segment just stamped
        # _last_activity), so skip the call on the receiver-side common
        # case — every data segment carries an ACK that lands here.
        if self.stream._length > self.snd_nxt_off or (
            self._fin_pending and not self._fin_sent
        ):
            self._try_send()

    def _recover_off(self) -> int:
        """The NewReno ``recover`` point as a stream offset."""
        return self.cc.recover - (self.iss + 1)

    def _on_local_fin_acked(self) -> None:
        self._cancel_rexmit_timer()
        if self.state == FIN_WAIT_1:
            self.state = FIN_WAIT_2
        elif self.state == CLOSING:
            self.state = TIME_WAIT
            self._enter_time_wait()
        elif self.state == LAST_ACK:
            self._teardown("closed")

    # ------------------------------------------------------------- teardown

    def _enter_time_wait(self) -> None:
        self._cancel_rexmit_timer()
        if self._timewait_timer is None:
            self._timewait_timer = self.scheduler.after(
                self.config.time_wait,
                lambda: self._teardown("closed"),
                label=f"{self.name}:timewait",
            )

    def _teardown(self, reason: str) -> None:
        if self.state == CLOSED and not self._registered:
            return
        self.state = CLOSED
        self._cancel_rexmit_timer()
        self._cancel_delack()
        self._cancel_persist()
        if self._timewait_timer is not None:
            self._timewait_timer.cancel()
            self._timewait_timer = None
        self._unregister()
        if self.on_closed:
            self.on_closed(self, reason)


class TcpListener:
    """Passive endpoint accepting connections on a port."""

    def __init__(
        self,
        host: Host,
        scheduler: EventScheduler,
        port: int,
        on_accept: Callable[[TcpConnection], None],
        config: Optional[TcpConfig] = None,
    ) -> None:
        self.host = host
        self.scheduler = scheduler
        self.port = port
        self.on_accept = on_accept
        self.config = config if config is not None else TcpConfig()
        self.accepted = 0
        host.listen(port, self._on_segment)

    def _on_segment(self, seg: TcpSegment) -> None:
        if not (seg.is_syn and not seg.is_ack):
            return  # stray non-SYN for an unknown flow: ignore
        conn = TcpConnection(
            self.host,
            self.scheduler,
            self.port,
            seg.src_ip,
            seg.src_port,
            config=TcpConfig(**vars(self.config)),
            name=f"{self.host.name}:{self.port}<-{seg.src_ip}:{seg.src_port}",
        )
        self.accepted += 1
        # let the application attach callbacks before any data can arrive
        self.on_accept(conn)
        conn.accept_syn(seg)

    def close(self) -> None:
        self.host.stop_listening(self.port)
