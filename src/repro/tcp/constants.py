"""TCP constants and defaults used by the from-scratch implementation."""

# -- header flags -----------------------------------------------------------

FIN = 0x01
SYN = 0x02
RST = 0x04
PSH = 0x08
ACK = 0x10

FLAG_NAMES = {FIN: "FIN", SYN: "SYN", RST: "RST", PSH: "PSH", ACK: "ACK"}


def flags_repr(flags: int) -> str:
    """Human-readable flag string, e.g. ``"SYN|ACK"``."""
    names = [name for bit, name in FLAG_NAMES.items() if flags & bit]
    return "|".join(names) if names else "-"


# -- protocol defaults ------------------------------------------------------

DEFAULT_MSS = 1460                 # bytes of payload per segment
DEFAULT_RECV_BUFFER = 512 * 1024   # receiver buffer (advertised window ceiling)
DEFAULT_INIT_CWND_SEGMENTS = 3     # RFC 3390-era initial window
DEFAULT_MIN_RTO = 1.0              # seconds; RFC 6298 recommended floor
DEFAULT_MAX_RTO = 60.0             # seconds
DEFAULT_DELAYED_ACK = 0.1          # seconds; delayed-ACK timer
DEFAULT_DUPACK_THRESHOLD = 3       # fast-retransmit trigger
DEFAULT_TIME_WAIT = 1.0            # seconds before releasing the 4-tuple
DEFAULT_MAX_REXMIT = 15            # consecutive RTOs before giving up (tcp_retries2)

# Wire sizes (Ethernet II + IPv4 + TCP, no options except on SYN).
ETHERNET_HEADER = 14
IPV4_HEADER = 20
TCP_HEADER = 20
TCP_SYN_OPTIONS = 8     # MSS(4) + NOP(1) + window scale(3)
TCP_TS_OPTIONS = 0      # timestamps not used


def header_overhead(flags: int) -> int:
    """Total header bytes on the wire for a segment with ``flags``."""
    options = TCP_SYN_OPTIONS if flags & SYN else 0
    return ETHERNET_HEADER + IPV4_HEADER + TCP_HEADER + options
