"""A from-scratch TCP implementation for the streaming-traffic simulator.

Provides connection establishment, NewReno congestion control, receive-window
flow control (the mechanism behind the paper's client-side throttling),
delayed ACKs, fast retransmit/recovery, RTO retransmission, zero-window
probing and orderly teardown.
"""

from .congestion import NewRenoCongestion
from .connection import (
    CLOSE_WAIT,
    CLOSED,
    CLOSING,
    ESTABLISHED,
    FIN_WAIT_1,
    FIN_WAIT_2,
    LAST_ACK,
    SYN_RCVD,
    SYN_SENT,
    TIME_WAIT,
    TcpConfig,
    TcpConnection,
    TcpListener,
    TcpStats,
)
from .constants import ACK, FIN, PSH, RST, SYN, flags_repr, header_overhead
from .recvbuf import ReceiveBuffer
from .rtt import RttEstimator
from .segment import TcpSegment
from .seqspace import SequenceUnwrapper, seq_diff, seq_leq, seq_lt, wrap
from .streambuf import StreamBuffer

__all__ = [
    "TcpConnection",
    "TcpListener",
    "TcpConfig",
    "TcpStats",
    "TcpSegment",
    "StreamBuffer",
    "ReceiveBuffer",
    "RttEstimator",
    "NewRenoCongestion",
    "SequenceUnwrapper",
    "wrap",
    "seq_lt",
    "seq_leq",
    "seq_diff",
    "flags_repr",
    "header_overhead",
    "ACK",
    "SYN",
    "FIN",
    "RST",
    "PSH",
    "CLOSED",
    "SYN_SENT",
    "SYN_RCVD",
    "ESTABLISHED",
    "FIN_WAIT_1",
    "FIN_WAIT_2",
    "CLOSE_WAIT",
    "CLOSING",
    "LAST_ACK",
    "TIME_WAIT",
]
