"""NewReno congestion control (RFC 5681 / RFC 6582), byte-based.

The congestion controller is the piece the paper's Figure 9 interrogates:
after an application-layer OFF period, does the sender re-probe the path
(congestion window reset per RFC 5681 §4.1) or blast the whole next block
back-to-back?  The paper observes the latter for every streaming service,
so ``reset_after_idle`` defaults to ``False`` here; the ablation benchmark
flips it.
"""

from __future__ import annotations

from .constants import DEFAULT_INIT_CWND_SEGMENTS


class NewRenoCongestion:
    """Slow start, congestion avoidance, fast retransmit/recovery."""

    def __init__(
        self,
        mss: int,
        init_cwnd_segments: int = DEFAULT_INIT_CWND_SEGMENTS,
        reset_after_idle: bool = False,
    ) -> None:
        if mss <= 0:
            raise ValueError(f"mss must be positive, got {mss!r}")
        self.mss = mss
        self.init_cwnd = init_cwnd_segments * mss
        self.cwnd = self.init_cwnd
        self.ssthresh = float("inf")
        self.reset_after_idle = reset_after_idle
        self.in_recovery = False
        self.recover = 0          # highest seq outstanding when loss detected
        # counters for analysis / tests
        self.fast_retransmits = 0
        self.timeouts = 0
        self.idle_resets = 0

    # -- state queries ------------------------------------------------------

    @property
    def in_slow_start(self) -> bool:
        return self.cwnd < self.ssthresh

    # -- events -------------------------------------------------------------

    def on_ack(self, newly_acked: int, snd_una: int,
               cwnd_limited: bool = True) -> None:
        """Cumulative ACK advanced by ``newly_acked`` bytes to ``snd_una``.

        ``cwnd_limited`` implements RFC 2861-style congestion window
        validation: an application-limited sender (a streaming server
        pacing small blocks) was not probing the path, so its window must
        not keep inflating on those ACKs.
        """
        if newly_acked <= 0:
            return
        if self.in_recovery:
            if snd_una > self.recover:
                # full ACK: leave fast recovery (RFC 6582)
                self.cwnd = self.ssthresh
                self.in_recovery = False
            else:
                # partial ACK: deflate by amount acked, keep recovering
                self.cwnd = max(self.mss, self.cwnd - newly_acked + self.mss)
            return
        if not cwnd_limited:
            return
        if self.in_slow_start:
            # appropriate byte counting, L=1
            self.cwnd += min(newly_acked, self.mss)
        else:
            self.cwnd += max(1, self.mss * self.mss // self.cwnd)

    def on_dupacks(self, flight_size: int, snd_nxt: int) -> bool:
        """Third duplicate ACK.  Returns True if fast retransmit should fire."""
        if self.in_recovery:
            return False
        self.ssthresh = max(flight_size // 2, 2 * self.mss)
        self.cwnd = self.ssthresh + 3 * self.mss
        self.in_recovery = True
        self.recover = snd_nxt
        self.fast_retransmits += 1
        return True

    def on_extra_dupack(self) -> None:
        """Each additional duplicate ACK while in recovery inflates cwnd."""
        if self.in_recovery:
            self.cwnd += self.mss

    def on_timeout(self, flight_size: int) -> None:
        """Retransmission timeout: collapse to one segment (RFC 5681 §3.1)."""
        self.ssthresh = max(flight_size // 2, 2 * self.mss)
        self.cwnd = self.mss
        self.in_recovery = False
        self.timeouts += 1

    def on_idle(self, idle_time: float, rto: float) -> None:
        """Connection was idle; optionally reset cwnd (RFC 5681 §4.1)."""
        if self.reset_after_idle and idle_time >= rto:
            self.cwnd = min(self.cwnd, self.init_cwnd)
            self.ssthresh = max(self.ssthresh, self.cwnd)
            self.idle_resets += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        phase = (
            "recovery"
            if self.in_recovery
            else ("slow-start" if self.in_slow_start else "avoidance")
        )
        return f"NewRenoCongestion(cwnd={self.cwnd}, ssthresh={self.ssthresh}, {phase})"
