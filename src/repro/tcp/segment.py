"""TCP segments as exchanged inside the simulator.

A segment carries its 4-tuple (the simulator does not wrap segments in a
separate IP object), *unwrapped* sequence/ack numbers, flags, the advertised
receive window in bytes, and a payload.

Payloads can be **real** (``payload`` is a ``bytes`` of length
``payload_len`` — used for HTTP headers and container metadata the analysis
layer must parse) or **virtual** (``payload is None`` — video body bytes
whose content is irrelevant; only the length matters).  Virtual payloads
keep multi-megabyte streaming sessions cheap; the pcap writer zero-fills
them so emitted captures remain well-formed.
"""

from __future__ import annotations

from typing import Optional

from .constants import ACK, FIN, PSH, SYN, flags_repr, header_overhead


class TcpSegment:
    """One TCP segment in flight.

    Segments built via :meth:`acquire` are *pooled*: the delivering link
    hands them back through :meth:`release` once the receiver is done
    (delivery is synchronous and the capture taps copy fields out), so
    the sender's retransmit-free virtual-payload path reuses a handful of
    objects instead of allocating one per MSS.  Only segments with
    ``poolable`` set participate; hand-built segments are never recycled.
    """

    __slots__ = (
        "src_ip",
        "src_port",
        "dst_ip",
        "dst_port",
        "seq",
        "ack",
        "flags",
        "window",
        "payload_len",
        "payload",
        "sent_at",
        "retransmission",
        "poolable",
        "wire_size",
    )

    #: Shared free list for :meth:`acquire`/:meth:`release`.
    _pool: list = []
    #: Upper bound on the free list; beyond this, released segments are
    #: simply dropped for the garbage collector.
    _POOL_LIMIT = 1024

    def __init__(
        self,
        src_ip: str,
        src_port: int,
        dst_ip: str,
        dst_port: int,
        *,
        seq: int,
        ack: int = 0,
        flags: int = ACK,
        window: int = 0,
        payload_len: int = 0,
        payload: Optional[bytes] = None,
        sent_at: float = 0.0,
        retransmission: bool = False,
    ) -> None:
        if payload is not None and len(payload) != payload_len:
            raise ValueError(
                f"payload length mismatch: len(payload)={len(payload)} "
                f"payload_len={payload_len}"
            )
        if payload_len < 0:
            raise ValueError(f"payload_len must be >= 0, got {payload_len}")
        self.src_ip = src_ip
        self.src_port = src_port
        self.dst_ip = dst_ip
        self.dst_port = dst_port
        self.seq = seq
        self.ack = ack
        self.flags = flags
        self.window = window
        self.payload_len = payload_len
        self.payload = payload
        self.sent_at = sent_at
        self.retransmission = retransmission
        self.poolable = False
        #: Bytes on the wire (Ethernet + IP + TCP headers + payload).
        #: Precomputed: flags and payload_len never change after build,
        #: and the link layer reads this once per hop.
        self.wire_size = header_overhead(flags) + payload_len

    # -- pooling ------------------------------------------------------------

    @classmethod
    def acquire(
        cls,
        src_ip: str,
        src_port: int,
        dst_ip: str,
        dst_port: int,
        *,
        seq: int,
        ack: int,
        flags: int,
        window: int,
        payload_len: int = 0,
        sent_at: float = 0.0,
    ) -> "TcpSegment":
        """Build a virtual-payload segment, reusing a pooled object if one
        is free.

        Only for the sender's hot path: the payload is always virtual
        (``payload is None``) and the segment is never a retransmission.
        The returned segment has ``poolable`` set, which tells the
        delivering link to :meth:`release` it after the receiver has
        processed it.
        """
        pool = cls._pool
        if pool:
            seg = pool.pop()
            seg.src_ip = src_ip
            seg.src_port = src_port
            seg.dst_ip = dst_ip
            seg.dst_port = dst_port
            seg.seq = seq
            seg.ack = ack
            seg.flags = flags
            seg.window = window
            seg.payload_len = payload_len
            seg.payload = None
            seg.sent_at = sent_at
            seg.retransmission = False
            seg.wire_size = header_overhead(flags) + payload_len
        else:
            seg = cls(
                src_ip,
                src_port,
                dst_ip,
                dst_port,
                seq=seq,
                ack=ack,
                flags=flags,
                window=window,
                payload_len=payload_len,
                sent_at=sent_at,
            )
        seg.poolable = True
        return seg

    def release(self) -> None:
        """Return a pooled segment to the free list (idempotence guard:
        clears ``poolable`` so a double release is a no-op)."""
        if self.poolable:
            self.poolable = False
            pool = TcpSegment._pool
            if len(pool) < TcpSegment._POOL_LIMIT:
                pool.append(self)

    # -- derived ------------------------------------------------------------

    @property
    def seq_consumed(self) -> int:
        """Sequence space consumed: payload plus SYN/FIN flags."""
        n = self.payload_len
        if self.flags & SYN:
            n += 1
        if self.flags & FIN:
            n += 1
        return n

    @property
    def end_seq(self) -> int:
        return self.seq + self.seq_consumed

    @property
    def is_syn(self) -> bool:
        return bool(self.flags & SYN)

    @property
    def is_fin(self) -> bool:
        return bool(self.flags & FIN)

    @property
    def is_ack(self) -> bool:
        return bool(self.flags & ACK)

    @property
    def is_pure_ack(self) -> bool:
        """ACK with no payload and no SYN/FIN."""
        return self.flags == ACK and self.payload_len == 0

    def flow_key(self):
        """Directed flow identity: (src_ip, src_port, dst_ip, dst_port)."""
        return (self.src_ip, self.src_port, self.dst_ip, self.dst_port)

    def materialized_payload(self) -> bytes:
        """The payload as real bytes, zero-filling virtual content."""
        if self.payload is not None:
            return self.payload
        return bytes(self.payload_len)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TcpSegment({self.src_ip}:{self.src_port}->{self.dst_ip}:{self.dst_port} "
            f"{flags_repr(self.flags)} seq={self.seq} ack={self.ack} "
            f"len={self.payload_len} win={self.window})"
        )
