"""RFC 6298 round-trip-time estimation and retransmission timeout."""

from __future__ import annotations

from .constants import DEFAULT_MAX_RTO, DEFAULT_MIN_RTO

ALPHA = 1.0 / 8.0
BETA = 1.0 / 4.0
K = 4.0
INITIAL_RTO = 1.0


class RttEstimator:
    """Tracks SRTT/RTTVAR and computes the RTO, with Karn-style backoff.

    Per RFC 6298: on the first sample ``SRTT = R`` and ``RTTVAR = R/2``;
    afterwards ``RTTVAR = (1-beta)*RTTVAR + beta*|SRTT - R|`` and
    ``SRTT = (1-alpha)*SRTT + alpha*R``.  ``RTO = SRTT + K*RTTVAR`` clamped
    to ``[min_rto, max_rto]``.  Timeouts double the RTO (exponential
    backoff); a fresh sample cancels the backoff.
    """

    def __init__(
        self,
        min_rto: float = DEFAULT_MIN_RTO,
        max_rto: float = DEFAULT_MAX_RTO,
        initial_rto: float = INITIAL_RTO,
    ) -> None:
        if min_rto <= 0 or max_rto < min_rto:
            raise ValueError(f"invalid RTO bounds [{min_rto!r}, {max_rto!r}]")
        self.min_rto = min_rto
        self.max_rto = max_rto
        self.srtt: float = 0.0
        self.rttvar: float = 0.0
        self.has_sample = False
        self._base_rto = max(initial_rto, min_rto)
        self._backoff = 1.0
        #: Current retransmission timeout, with backoff and clamping.
        #: Stored (not derived per read): the TCP hot path consults the RTO
        #: on every ACK, while only :meth:`sample`, :meth:`backoff` and
        #: :meth:`reset_backoff` can change it.
        self.rto = min(self.max_rto, max(self.min_rto, self._base_rto))

    def _update_rto(self) -> None:
        rto = self._base_rto * self._backoff
        self.rto = min(self.max_rto, max(self.min_rto, rto))

    def sample(self, rtt: float) -> None:
        """Incorporate a new RTT measurement (seconds)."""
        if rtt < 0:
            raise ValueError(f"negative RTT sample {rtt!r}")
        if not self.has_sample:
            self.srtt = rtt
            self.rttvar = rtt / 2.0
            self.has_sample = True
        else:
            self.rttvar = (1.0 - BETA) * self.rttvar + BETA * abs(self.srtt - rtt)
            self.srtt = (1.0 - ALPHA) * self.srtt + ALPHA * rtt
        self._base_rto = self.srtt + K * self.rttvar
        self._backoff = 1.0
        self._update_rto()

    def backoff(self) -> None:
        """Double the RTO after a retransmission timeout."""
        self._backoff = min(self._backoff * 2.0, self.max_rto / max(self._base_rto, 1e-9))
        self._update_rto()

    def reset_backoff(self) -> None:
        """Clear exponential backoff (called when the cumulative ACK advances:
        the peer is alive and progress resumed, so the inflated RTO no longer
        reflects the path)."""
        if self._backoff != 1.0:
            self._backoff = 1.0
            self._update_rto()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RttEstimator(srtt={self.srtt:.4f}, rttvar={self.rttvar:.4f}, "
            f"rto={self.rto:.4f})"
        )
