"""Benchmark: regenerate Figure 6 (long ON-OFF cycles)."""

from repro.experiments import fig6
from repro.streaming import StreamingStrategy

MB = 1024 * 1024


def test_bench_fig6(benchmark, scale, show):
    result = benchmark.pedantic(
        lambda: fig6.run(scale, seed=0), rounds=1, iterations=1)
    show(result.report())
    # the representative Chrome trace shows long cycles with OFF periods
    # "in the order of 60 seconds"
    assert result.trace_strategy is StreamingStrategy.LONG_ONOFF
    assert result.trace_max_off > 10.0
    # the receive window periodically empties: Chrome pulls
    assert min(result.trace_window.values) < 128 * 1024
    # most steady-state bytes move in blocks above 2.5 MB
    for series in result.series:
        assert series.share_above_threshold > 0.5, series.label
