"""Benchmark: regenerate Figure 9 (ACK-clock analysis + idle-reset ablation)."""

import pytest

from repro.experiments import fig9

KB = 1024


def test_bench_fig9(benchmark, scale, show):
    result = benchmark.pedantic(
        lambda: fig9.run(scale, seed=0), rounds=1, iterations=1)
    show(result.report())
    curves = {c.label: c for c in result.curves}
    # Flash: the whole 64 kB block arrives back-to-back
    assert curves["Flash"].cdf.median == pytest.approx(64 * KB, rel=0.15)
    # per-application curves differ (min(cwnd, block size) per app)
    assert curves["Chrome"].cdf.median > curves["Flash"].cdf.median
    # iPad: fresh connections per block keep the ACK clock
    assert curves["iPad"].cdf.median <= 2 * result.init_window_bytes
    # ablation: the RFC 5681 idle reset restores the ACK clock
    assert (result.flash_with_idle_reset.cdf.median
            < result.flash_no_reset.cdf.median / 4)
