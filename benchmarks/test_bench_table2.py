"""Benchmark: regenerate Table 2 (strategy comparison under interruption)."""

from repro.experiments import table2
from repro.streaming import StreamingStrategy


def test_bench_table2(benchmark, scale, show):
    result = benchmark.pedantic(
        lambda: table2.run(scale, seed=0), rounds=1, iterations=1)
    show(result.report())
    by = {r.strategy: r for r in result.rows}
    no = by[StreamingStrategy.NO_ONOFF]
    long_ = by[StreamingStrategy.LONG_ONOFF]
    short = by[StreamingStrategy.SHORT_ONOFF]
    # unused bytes on interruption: Large >> Moderate >= Small
    assert no.unused_bytes > 3 * long_.unused_bytes
    assert long_.unused_bytes >= 0.9 * short.unused_bytes
    # buffer occupancy: Large >> Moderate > Small
    assert no.peak_buffer_bytes > 3 * long_.peak_buffer_bytes
    assert long_.peak_buffer_bytes > short.peak_buffer_bytes
