"""Benchmark: regenerate Figure 11 (Netflix buffering amounts)."""

from repro.experiments import fig11

MB = 1024 * 1024


def test_bench_fig11(benchmark, scale, show):
    result = benchmark.pedantic(
        lambda: fig11.run(scale, seed=0), rounds=1, iterations=1)
    show(result.report())
    by_label = {s.label: s for s in result.series}
    # PCs buffer ~50 MB (all renditions), iPad ~10 MB (a subset),
    # Android ~40 MB
    assert 35 * MB < by_label["PC Acad."].cdf.median < 65 * MB
    assert 6 * MB < by_label["iPad Acad."].cdf.median < 16 * MB
    assert 30 * MB < by_label["Android Acad."].cdf.median < 55 * MB
    # ordering: iPad << Android <= PC
    assert (by_label["iPad Acad."].cdf.median
            < by_label["Android Acad."].cdf.median
            <= by_label["PC Acad."].cdf.median * 1.2)
