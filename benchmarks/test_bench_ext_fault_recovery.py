"""Benchmark: the fault-recovery extension experiment.

Sweeps access-link outage duration against retry policy for a Netflix
(native iPad) session: the stall watchdog detects the dead transfer,
reconnects with exponential backoff, and resumes with an HTTP Range
request — so the resuming policy re-downloads nothing, while the
restarting policy pays for every byte received before the cut.
"""

from repro.experiments import ext_fault_recovery


def test_bench_ext_fault_recovery(benchmark, scale, show):
    result = benchmark.pedantic(
        lambda: ext_fault_recovery.run(scale, seed=0), rounds=1, iterations=1)
    show(result.report())
    rows = {(r.outage_s, r.policy): r for r in result.rows}
    assert len(rows) == 6  # 3 durations x 2 policies
    # every faulted session recovers (no failures at these durations)
    assert not any(r.failed for r in result.rows)
    # Range resume never re-downloads; restarting wastes bytes once the
    # outage is long enough to kill an in-flight transfer
    assert all(r.wasted_mb == 0.0 for r in result.rows if r.policy == "resume")
    longest = max(r.outage_s for r in result.rows)
    assert rows[(longest, "restart")].retries > 0
    assert rows[(longest, "restart")].wasted_mb > 0.0
    # the longest outage starves playback; resuming recovers sooner than
    # restarting the interrupted transfer from scratch
    assert rows[(longest, "resume")].rebuffer_count >= 1
    assert (rows[(longest, "resume")].recovery_s
            <= rows[(longest, "restart")].recovery_s)
