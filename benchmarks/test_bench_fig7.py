"""Benchmark: regenerate Figure 7 (iPad's multiple strategies)."""

from repro.experiments import fig7
from repro.streaming import StreamingStrategy


def test_bench_fig7(benchmark, scale, show):
    result = benchmark.pedantic(
        lambda: fig7.run(scale, seed=0), rounds=1, iterations=1)
    show(result.report())
    # Video1 (high rate): many successive connections, mixed cycles
    assert result.video1.strategy is StreamingStrategy.MIXED
    assert result.video1.connections_first_minute >= 10
    # Video2 (low rate): one connection, short cycles
    assert result.video2.strategy is StreamingStrategy.SHORT_ONOFF
    assert result.video2.connections == 1
    # block size grows with the encoding rate
    assert result.rate_block_correlation > 0.3
