"""Ablation benchmarks for the design choices DESIGN.md calls out.

1. ON/OFF idle-gap threshold sensitivity (0.05 - 1.0 s);
2. loss-rate sweep: how loss merges/splits Flash blocks;
3. encoding-rate estimation: FLV header vs Content-Length vs ground truth;
4. buffering-phase detector: first-OFF heuristic vs rate-knee.
"""

import pytest

from repro.analysis import (
    analyze_session,
    median,
    split_phases_rate_knee,
)
from repro.experiments.common import MB
from repro.simnet import RESEARCH, RESIDENCE
from repro.streaming import (
    Application,
    Container,
    Service,
    SessionConfig,
    run_session,
)
from repro.workloads import MBPS, Video

KB = 1024

FLASH_VIDEO = Video(
    video_id="abl-flash", duration=500.0, encoding_rate_bps=1.0 * MBPS,
    resolution="360p", container="flv",
)
WEBM_VIDEO = Video(
    video_id="abl-webm", duration=400.0, encoding_rate_bps=2.0 * MBPS,
    resolution="360p", container="webm",
)


def flash_session(profile=RESEARCH, seed=1, duration=120.0, **kw):
    config = SessionConfig(
        profile=profile, service=Service.YOUTUBE,
        application=Application.FIREFOX, container=Container.FLASH,
        capture_duration=duration, seed=seed, **kw)
    return run_session(FLASH_VIDEO, config)


def test_bench_ablation_gap_threshold(benchmark, show):
    """Block detection is stable across a wide band of gap thresholds.

    Flash cycles at 1 Mbps have ~0.4 s OFF periods: thresholds well below
    that measure the same 64 kB blocks; a threshold above the OFF duration
    sees no cycles at all (strategy collapses to bulk).
    """
    result = benchmark.pedantic(lambda: flash_session(), rounds=1,
                                iterations=1)
    lines = ["Ablation — ON/OFF gap-threshold sensitivity (1 Mbps Flash)"]
    medians = {}
    for threshold in (0.05, 0.1, 0.15, 0.25, 0.35, 0.6, 1.0):
        analysis = analyze_session(result, gap_threshold=threshold)
        blocks = analysis.block_sizes
        medians[threshold] = median(blocks) if blocks else 0
        lines.append(
            f"  threshold={threshold:4.2f}s  cycles={len(blocks):4d}  "
            f"median block={medians[threshold] / KB:6.0f} kB  "
            f"strategy={analysis.strategy}")
    show("\n".join(lines))
    for threshold in (0.05, 0.1, 0.15, 0.25, 0.35):
        assert medians[threshold] == pytest.approx(64 * KB, rel=0.1), threshold
    # thresholds beyond the OFF duration cannot see the cycles
    assert medians[1.0] == 0


def test_bench_ablation_loss_sweep(benchmark, show):
    """Loss both splits (RTO inside a block) and merges (retransmission in
    the gap) Flash blocks, exactly as Section 5.1.1 describes."""

    def sweep():
        rows = []
        for loss in (0.0, 0.002, 0.005, 0.01, 0.02):
            profile = RESIDENCE.with_loss(loss)
            result = flash_session(profile=profile, seed=3, duration=150.0)
            analysis = analyze_session(result)
            blocks = analysis.block_sizes
            small = sum(1 for b in blocks if b < 56 * KB)
            large = sum(1 for b in blocks if b > 72 * KB)
            rows.append((loss, len(blocks), small, large,
                         analysis.retransmission_rate))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["Ablation — loss sweep (Flash blocks, Residence bandwidth)"]
    for loss, cycles, small, large, retx in rows:
        lines.append(
            f"  loss={loss:5.3f}  cycles={cycles:4d}  split(<56k)={small:3d}  "
            f"merged(>72k)={large:3d}  retx={retx:.2%}")
    show("\n".join(lines))
    clean = rows[0]
    lossy = rows[-1]
    assert clean[2] == 0 and clean[3] == 0  # no split/merged blocks clean
    assert lossy[2] + lossy[3] > 0          # loss perturbs block sizes
    assert lossy[4] > clean[4]              # retransmissions actually rose


def test_bench_ablation_rate_estimation(benchmark, show):
    """FLV header recovery is exact; Content-Length/duration estimation is
    exact only when the full video is announced (the webM artifact)."""

    def run_all():
        flash = flash_session(seed=5)
        config = SessionConfig(
            profile=RESEARCH, service=Service.YOUTUBE,
            application=Application.INTERNET_EXPLORER,
            container=Container.HTML5, capture_duration=120.0, seed=5)
        webm = run_session(WEBM_VIDEO, config)
        return analyze_session(flash), analyze_session(webm)

    flash_analysis, webm_analysis = benchmark.pedantic(run_all, rounds=1,
                                                       iterations=1)
    show(
        "Ablation — encoding-rate estimation\n"
        f"  Flash: method={flash_analysis.rate_estimate.method}  "
        f"estimated={flash_analysis.encoding_rate_bps / 1e6:.3f} Mbps  "
        f"truth={FLASH_VIDEO.encoding_rate_bps / 1e6:.3f} Mbps\n"
        f"  webM : method={webm_analysis.rate_estimate.method}  "
        f"estimated={webm_analysis.encoding_rate_bps / 1e6:.3f} Mbps  "
        f"truth={WEBM_VIDEO.encoding_rate_bps / 1e6:.3f} Mbps"
    )
    assert flash_analysis.rate_estimate.method == "flv-header"
    assert flash_analysis.encoding_rate_bps == pytest.approx(
        FLASH_VIDEO.encoding_rate_bps)
    assert webm_analysis.rate_estimate.method == "content-length"
    assert webm_analysis.encoding_rate_bps == pytest.approx(
        WEBM_VIDEO.encoding_rate_bps, rel=0.01)


def test_bench_ablation_phase_detector(benchmark, show):
    """First-OFF heuristic vs rate-knee detection of the buffering end.

    On a clean path the two agree; the first-OFF heuristic is the paper's
    and inherits its loss sensitivity."""
    result = benchmark.pedantic(lambda: flash_session(seed=7), rounds=1,
                                iterations=1)
    analysis = analyze_session(result)
    knee = split_phases_rate_knee(analysis.trace.events)
    first_off = analysis.phases.buffering_end
    show(
        "Ablation — buffering-phase detectors (clean path)\n"
        f"  first-OFF boundary: {first_off:.2f} s\n"
        f"  rate-knee boundary: {knee:.2f} s"
    )
    assert first_off is not None and knee is not None
    assert knee == pytest.approx(first_off, abs=3.0)
