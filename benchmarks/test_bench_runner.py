"""Benchmark: the session-execution engine itself.

Runs Table 1 — 16 independent sessions, the repository's canonical
multi-session campaign — three ways and compares wall-clock:

* serial, no cache (the pre-engine baseline),
* ``jobs=4`` against a cold cache (the fan-out path), and
* ``jobs=4`` against the now-warm cache (the memoization path).

All three must render byte-identical reports; that equality *is* the
engine's central guarantee.  The warm rerun must be far cheaper than any
cold run on every machine; the parallel cold run is only asserted faster
on hardware that can actually run 4 workers at once.
"""

import os
import time

from repro.analysis import format_table
from repro.experiments import get_experiment
from repro.runner import ResultCache, RunStats


def _timed(spec, scale, **options):
    stats = RunStats()
    started = time.perf_counter()
    result = spec.run(scale, seed=0, stats=stats, **options)
    return time.perf_counter() - started, result.report(), stats


def test_bench_runner_speedup(benchmark, scale, show, tmp_path):
    spec = get_experiment("table1")
    cache = ResultCache(tmp_path / "cache")

    def campaign():
        serial = _timed(spec, scale, jobs=1)
        cold = _timed(spec, scale, jobs=4, cache=cache)
        warm = _timed(spec, scale, jobs=4, cache=cache)
        return serial, cold, warm

    (serial_s, serial_report, _), \
        (cold_s, cold_report, cold_stats), \
        (warm_s, warm_report, warm_stats) = benchmark.pedantic(
            campaign, rounds=1, iterations=1)

    show(format_table(
        ["Run", "Wall(s)", "Hits", "Misses", "Speedup vs serial"],
        [
            ("serial, no cache", f"{serial_s:.1f}", "-", "-", "1.0x"),
            ("jobs=4, cold cache", f"{cold_s:.1f}", cold_stats.cache_hits,
             cold_stats.cache_misses, f"{serial_s / cold_s:.1f}x"),
            ("jobs=4, warm cache", f"{warm_s:.2f}", warm_stats.cache_hits,
             warm_stats.cache_misses, f"{serial_s / warm_s:.1f}x"),
        ],
        title=f"table1 ({scale.name}) through the engine "
              f"[{os.cpu_count() or 1} cpus]",
    ))

    # The guarantee everything else rests on: identical output.
    assert cold_report == serial_report
    assert warm_report == serial_report
    # Cold run simulated everything; warm run simulated nothing.
    assert cold_stats.cache_misses == cold_stats.sessions
    assert warm_stats.cache_hits == warm_stats.sessions
    # Memoization pays regardless of core count.
    assert warm_s < cold_s / 2
    # Fan-out pays when the hardware can actually parallelize.
    if (os.cpu_count() or 1) >= 4:
        assert cold_s < serial_s / 2, (
            f"jobs=4 cold ({cold_s:.1f}s) should be >=2x faster than "
            f"serial ({serial_s:.1f}s) on {os.cpu_count()} cpus"
        )
