"""Benchmark: regenerate Table 1 (the strategy matrix)."""

from repro.experiments import table1


def test_bench_table1(benchmark, scale, show):
    result = benchmark.pedantic(
        lambda: table1.run(scale, seed=0), rounds=1, iterations=1)
    show(result.report())
    assert result.accuracy == 1.0, "a Table 1 cell stopped reproducing"
