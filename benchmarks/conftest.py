"""Benchmark harness configuration.

Each benchmark regenerates one table or figure of the paper at the scale
selected by ``--repro-scale`` (``small`` by default; ``medium``/``full``
approach the paper's session counts).  Reports print to stdout — run with
``pytest benchmarks/ --benchmark-only -s`` to see the regenerated rows.

``--repro-jobs N`` fans each experiment's independent sessions out over N
worker processes (reports stay byte-identical), and ``--repro-cache-dir``
memoizes completed sessions on disk — useful to iterate on an analysis
change without re-simulating, but note that a warm cache makes *timing*
numbers meaningless for the simulation itself.

``--repro-bench-out FILE`` records each benchmark's wall time into the
same schema-versioned bench file ``repro bench`` writes
(``repro-bench/v1``), so pytest-benchmark runs and CLI bench snapshots
feed one comparable trajectory: ``repro bench --compare`` diffs either
kind against either kind.
"""

import time

import pytest

from repro.experiments import SCALES, engine_options
from repro.obs import BenchWriter


def pytest_addoption(parser):
    parser.addoption(
        "--repro-scale",
        action="store",
        default="small",
        choices=sorted(SCALES),
        help="experiment scale: small (fast), medium, full (paper-scale)",
    )
    parser.addoption(
        "--repro-jobs",
        action="store",
        type=int,
        default=1,
        help="worker processes for independent sessions (default 1)",
    )
    parser.addoption(
        "--repro-cache-dir",
        action="store",
        default=None,
        help="memoize completed sessions under this directory",
    )
    parser.addoption(
        "--repro-bench-out",
        action="store",
        default=None,
        metavar="FILE",
        help="record per-test wall times into a repro-bench/v1 JSON file "
             "(comparable with `repro bench --compare`)",
    )


def pytest_configure(config):
    out = config.getoption("--repro-bench-out")
    if out:
        config._repro_bench_writer = BenchWriter(
            "pytest benchmarks",
            config.getoption("--repro-scale"),
            jobs=config.getoption("--repro-jobs"),
        )


def pytest_unconfigure(config):
    writer = getattr(config, "_repro_bench_writer", None)
    if writer is not None and writer.entries:
        path = writer.write(config.getoption("--repro-bench-out"))
        print(f"\nbench written: {path}")


@pytest.fixture(autouse=True)
def engine(request):
    """Install the engine options every benchmark runs under."""
    with engine_options(
        jobs=request.config.getoption("--repro-jobs"),
        cache=request.config.getoption("--repro-cache-dir"),
    ) as options:
        yield options


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    outcome = yield
    report = outcome.get_result()
    if report.when == "call":
        item._repro_bench_passed = report.passed


@pytest.fixture(autouse=True)
def bench_record(request):
    """Record this test's wall time into the shared bench file (if any).

    Failed benchmarks are *not* recorded: a partial timing from a test
    that blew up mid-run would poison the compare trajectory with a
    number that measures nothing.
    """
    writer = getattr(request.config, "_repro_bench_writer", None)
    if writer is None:
        yield
        return
    started = time.perf_counter()
    yield
    if getattr(request.node, "_repro_bench_passed", False):
        writer.add(request.node.name, time.perf_counter() - started,
                   scale=request.config.getoption("--repro-scale"))


@pytest.fixture
def scale(request):
    return SCALES[request.config.getoption("--repro-scale")]


@pytest.fixture
def show(capsys):
    """Print an experiment report even under pytest's capture."""

    def _show(text: str) -> None:
        with capsys.disabled():
            print()
            print(text)

    return _show
