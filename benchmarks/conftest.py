"""Benchmark harness configuration.

Each benchmark regenerates one table or figure of the paper at the scale
selected by ``--repro-scale`` (``small`` by default; ``medium``/``full``
approach the paper's session counts).  Reports print to stdout — run with
``pytest benchmarks/ --benchmark-only -s`` to see the regenerated rows.
"""

import pytest

from repro.experiments import SCALES, SMALL


def pytest_addoption(parser):
    parser.addoption(
        "--repro-scale",
        action="store",
        default="small",
        choices=sorted(SCALES),
        help="experiment scale: small (fast), medium, full (paper-scale)",
    )


@pytest.fixture
def scale(request):
    return SCALES[request.config.getoption("--repro-scale")]


@pytest.fixture
def show(capsys):
    """Print an experiment report even under pytest's capture."""

    def _show(text: str) -> None:
        with capsys.disabled():
            print()
            print(text)

    return _show
