"""Microbenchmarks for the simulation fast path (PR 5 tentpole).

Three probes of the allocation-lean core, wired into the shared
``--repro-bench-out`` BenchWriter schema so ``repro bench --compare``
gates regressions:

* **scheduler churn** — raw event-loop throughput: tuple-entry posts,
  argument-carrying callbacks, handle cancellation and lazy deletion.
* **single long-cycle session** — the acceptance workload: one 600 s
  2 Mbps video over the Residence profile, whose block transfer settles
  into the paper's long ON-OFF cycles (Figure 2 receive-window
  throttling).  This is the ≥2x-vs-main criterion.
* **64-session campaign** — many short sessions back to back, the shape
  of the ROADMAP's campaign engine.

Each benchmark asserts the workload's deterministic outputs, so a perf
run doubles as a byte-identity check.
"""

import pytest

from repro.simnet import EventScheduler
from repro.simnet.profiles import RESIDENCE
from repro.streaming import Application, Service
from repro.streaming.session import SessionConfig, run_session
from repro.workloads import MBPS, Video


def _long_cycle_session():
    """One long ON-OFF-cycle session (the acceptance microbenchmark)."""
    video = Video(video_id="bench-core", duration=600.0,
                  encoding_rate_bps=2 * MBPS,
                  resolution="360p", container="flv")
    config = SessionConfig(profile=RESIDENCE, service=Service.YOUTUBE,
                           application=Application.FIREFOX,
                           capture_duration=180.0, seed=7)
    return run_session(video, config)


def test_bench_core_scheduler_churn(benchmark):
    """Raw scheduler throughput: post/fire/cancel churn, no simulation."""

    def churn() -> int:
        sched = EventScheduler()
        fired = [0]

        def bump(n: int) -> None:
            fired[0] += n

        def plain() -> None:
            fired[0] += 1

        handles = []
        for i in range(20_000):
            t = (i % 997) * 1e-3 + 1e-6
            sched.call_at(t, bump, 1)
            handles.append(sched.at(t, plain))
        for handle in handles[::2]:     # cancel half: lazy deletion path
            handle.cancel()
        sched.run_until(2.0)
        return fired[0]

    fired = benchmark.pedantic(churn, rounds=3, iterations=1)
    assert fired == 20_000 + 10_000


def test_bench_core_session_long_cycle(benchmark):
    """The ≥2x acceptance workload: one long ON-OFF-cycle session."""
    result = benchmark.pedantic(_long_cycle_session, rounds=3, iterations=1)
    # Byte-identity pins (identical on main before the fast path landed).
    assert len(result.capture) == 69583
    assert result.downloaded == 66164352
    assert not result.failed


def test_bench_core_campaign_64(benchmark):
    """64 short sessions back to back — the campaign-engine shape."""

    def campaign() -> int:
        total = 0
        for seed in range(64):
            video = Video(video_id=f"c{seed}", duration=120.0,
                          encoding_rate_bps=1 * MBPS,
                          resolution="360p", container="flv")
            config = SessionConfig(profile=RESIDENCE, service=Service.YOUTUBE,
                                   application=Application.FIREFOX,
                                   capture_duration=12.0, seed=seed)
            total += run_session(video, config).downloaded
        return total

    total = benchmark.pedantic(campaign, rounds=1, iterations=1)
    assert total > 0
