"""Microbenchmarks for the simulation fast path (PR 5 + PR 8 tentpoles).

Five probes of the allocation-lean core, wired into the shared
``--repro-bench-out`` BenchWriter schema so ``repro bench --compare``
gates regressions:

* **scheduler churn** — raw event-loop throughput: tuple-entry posts,
  argument-carrying callbacks, handle cancellation and lazy deletion.
* **single long-cycle session** — the PR 5 acceptance workload: one
  600 s 2 Mbps video over the Residence profile, whose block transfer
  settles into the paper's long ON-OFF cycles (Figure 2 receive-window
  throttling).
* **fast-path gate session** — the PR 8 CI gate workload: the same
  throttled ON/OFF shape on the clean 100 Mbps Research profile, where
  fast-forward + vectorized dispatch + train batching carry the run
  (this is the workload ``.github/workflows/ci.yml`` times A/B).
* **bulk train session** — the no-ON/OFF bulk-transfer strategy (HTML5
  webm over Firefox), where ``transmit_train`` and the vectorized
  delivery loop dominate.
* **64-session campaign** — many short sessions back to back, the shape
  of the ROADMAP's campaign engine.

Each benchmark asserts the workload's deterministic outputs, so a perf
run doubles as a byte-identity check.
"""

import pytest

from repro.simnet import EventScheduler
from repro.simnet.profiles import RESEARCH, RESIDENCE
from repro.streaming import Application, Service
from repro.streaming.session import SessionConfig, run_session
from repro.workloads import MBPS, Video


def _long_cycle_session():
    """One long ON-OFF-cycle session (the acceptance microbenchmark)."""
    video = Video(video_id="bench-core", duration=600.0,
                  encoding_rate_bps=2 * MBPS,
                  resolution="360p", container="flv")
    config = SessionConfig(profile=RESIDENCE, service=Service.YOUTUBE,
                           application=Application.FIREFOX,
                           capture_duration=180.0, seed=7)
    return run_session(video, config)


def test_bench_core_scheduler_churn(benchmark):
    """Raw scheduler throughput: post/fire/cancel churn, no simulation."""

    def churn() -> int:
        sched = EventScheduler()
        fired = [0]

        def bump(n: int) -> None:
            fired[0] += n

        def plain() -> None:
            fired[0] += 1

        handles = []
        for i in range(20_000):
            t = (i % 997) * 1e-3 + 1e-6
            sched.call_at(t, bump, 1)
            handles.append(sched.at(t, plain))
        for handle in handles[::2]:     # cancel half: lazy deletion path
            handle.cancel()
        sched.run_until(2.0)
        return fired[0]

    fired = benchmark.pedantic(churn, rounds=3, iterations=1)
    assert fired == 20_000 + 10_000


def test_bench_core_session_long_cycle(benchmark):
    """The ≥2x acceptance workload: one long ON-OFF-cycle session."""
    result = benchmark.pedantic(_long_cycle_session, rounds=3, iterations=1)
    # Byte-identity pins (identical on main before the fast path landed).
    assert len(result.capture) == 69583
    assert result.downloaded == 66164352
    assert not result.failed


def test_bench_core_session_ff_gate(benchmark):
    """The CI fast-path gate workload: throttled ON/OFF streaming on a
    clean fast link, where the analytic layers do the heavy lifting."""

    def gate_session():
        video = Video(video_id="bench-ff", duration=900.0,
                      encoding_rate_bps=2 * MBPS,
                      resolution="360p", container="flv")
        config = SessionConfig(profile=RESEARCH, service=Service.YOUTUBE,
                               application=Application.FIREFOX,
                               capture_duration=180.0, seed=7)
        return run_session(video, config)

    result = benchmark.pedantic(gate_session, rounds=3, iterations=1)
    # Byte-identity pins (identical with every fast-path layer off).
    assert len(result.capture) == 68706
    assert result.downloaded == 66229888
    assert not result.failed


def test_bench_core_session_bulk_train(benchmark):
    """Bulk no-ON/OFF transfer: the vectorized packet-train workload."""

    def bulk_session():
        video = Video(video_id="bench-bulk", duration=120.0,
                      encoding_rate_bps=2 * MBPS,
                      resolution="360p", container="webm")
        config = SessionConfig(profile=RESEARCH, service=Service.YOUTUBE,
                               application=Application.FIREFOX,
                               capture_duration=60.0, seed=5)
        return run_session(video, config)

    result = benchmark.pedantic(bulk_session, rounds=3, iterations=1)
    assert not result.failed
    assert len(result.capture) == BULK_TRAIN_PACKETS
    assert result.downloaded == BULK_TRAIN_BYTES


#: Byte-identity pins for the bulk-train workload (identical with every
#: fast-path layer off; see tests/test_fastpath_equivalence.py).
BULK_TRAIN_PACKETS = 32891
BULK_TRAIN_BYTES = 30000032


def test_bench_core_campaign_64(benchmark):
    """64 short sessions back to back — the campaign-engine shape."""

    def campaign() -> int:
        total = 0
        for seed in range(64):
            video = Video(video_id=f"c{seed}", duration=120.0,
                          encoding_rate_bps=1 * MBPS,
                          resolution="360p", container="flv")
            config = SessionConfig(profile=RESIDENCE, service=Service.YOUTUBE,
                                   application=Application.FIREFOX,
                                   capture_duration=12.0, seed=seed)
            total += run_session(video, config).downloaded
        return total

    total = benchmark.pedantic(campaign, rounds=1, iterations=1)
    assert total > 0
