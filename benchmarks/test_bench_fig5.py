"""Benchmark: regenerate Figure 5 (HTML5/IE steady state)."""

import pytest

from repro.analysis import median
from repro.experiments import fig5

KB = 1024


def test_bench_fig5(benchmark, scale, show):
    result = benchmark.pedantic(
        lambda: fig5.run(scale, seed=0), rounds=1, iterations=1)
    show(result.report())
    for net in result.networks:
        # 256 kB blocks dominate in every network
        assert median(net.block_sizes) == pytest.approx(256 * KB, rel=0.15), net.network
    # overall accumulation ratio near 1 (paper: mean 1.06, median 1.04)
    ratios = result.all_ratios
    assert 0.9 <= median(ratios) <= 1.25
