"""Benchmark: validate the Section-6 model (Eqs (1)-(9))."""

import pytest

from repro.experiments import model_validation


def test_bench_model_validation(benchmark, scale, show):
    result = benchmark.pedantic(
        lambda: model_validation.run(scale, seed=0), rounds=1, iterations=1)
    show(result.report())
    # Eqs (3)/(4): simulation matches the closed forms
    for row in result.moment_rows:
        assert row.mean_error < 0.1, row.strategy
        assert row.var_error < 0.25, row.strategy
    # strategy invariance: all three strategies share the same moments
    means = [r.empirical_mean for r in result.moment_rows]
    variances = [r.empirical_var for r in result.moment_rows]
    assert max(means) / min(means) < 1.1
    assert max(variances) / min(variances) < 1.4
    # Eq (7): the paper's 53.3 s worked example
    assert result.critical_duration_s == pytest.approx(53.33, rel=0.01)
    # Eq (9): Monte-Carlo waste matches the closed form
    err = (abs(result.waste_empirical_bps - result.waste_closed_bps)
           / result.waste_closed_bps)
    assert err < 0.2
    # waste grows with both buffering and accumulation ratio
    sweep = {(p.buffering_playback_s, p.accumulation_ratio): p.wasted_bps
             for p in result.sweep_rows}
    assert sweep[(5.0, 1.0)] < sweep[(40.0, 1.0)]
    assert sweep[(40.0, 1.0)] < sweep[(40.0, 1.5)]
    # smoothness: doubling rates cuts the CV by sqrt(2)
    assert result.migration_smoothness_ratio == pytest.approx(2 ** -0.5,
                                                              rel=0.01)
