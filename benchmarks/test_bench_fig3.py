"""Benchmark: regenerate Figure 3 (buffering amounts)."""

from repro.experiments import fig3

MB = 1024 * 1024


def test_bench_fig3(benchmark, scale, show):
    result = benchmark.pedantic(
        lambda: fig3.run(scale, seed=0), rounds=1, iterations=1)
    show(result.report())
    by_name = {n.network: n for n in result.networks}
    # Flash pushes ~40 s of playback in the clean networks
    assert 38.0 <= by_name["Research"].cdf.median <= 46.0
    assert 38.0 <= by_name["Home"].cdf.median <= 48.0
    # strong rate <-> bytes correlation in the clean networks (paper: 0.85)
    assert by_name["Research"].correlation_rate_bytes > 0.8
    # the lossy network measures less than the clean one on average
    assert (by_name["Residence"].cdf.quantile(0.25)
            < by_name["Research"].cdf.quantile(0.25))
    # HTML5/IE buffers ~10-15 MB regardless of rate, weak correlation
    for point in result.html5_points:
        assert 8 * MB <= point.buffering_bytes <= 18 * MB
    assert abs(result.html5_correlation) < 0.75
