"""Benchmark: regenerate Figure 12 (Netflix block sizes)."""

from repro.experiments import fig12
from repro.analysis import median

MB = 1024 * 1024


def test_bench_fig12(benchmark, scale, show):
    result = benchmark.pedantic(
        lambda: fig12.run(scale, seed=0), rounds=1, iterations=1)
    show(result.report())
    by_label = {s.label: s for s in result.series}
    # PC/iPad blocks: mostly below 2.5 MB but bigger than YouTube's
    for label in ("PC Acad.", "PC Home", "iPad Acad."):
        assert by_label[label].share_below_threshold > 0.8, label
        assert median(by_label[label].block_sizes) > 0.5 * MB, label
    # Android fetches multi-megabyte blocks
    assert median(by_label["Android Acad."].block_sizes) > 2.5 * MB
    assert by_label["Android Acad."].share_below_threshold < 0.5
