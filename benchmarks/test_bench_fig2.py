"""Benchmark: regenerate Figure 2 (short ON-OFF + receive window)."""

import pytest

from repro.experiments import fig2

KB = 1024


def test_bench_fig2(benchmark, scale, show):
    result = benchmark.pedantic(
        lambda: fig2.run(scale, seed=0), rounds=1, iterations=1)
    show(result.report())
    assert result.flash.median_block == pytest.approx(64 * KB, rel=0.1)
    assert result.html5.median_block == pytest.approx(256 * KB, rel=0.1)
    assert result.html5.steady_window_min < 64 * KB
    assert result.flash.steady_window_min > 128 * KB
