"""Benchmark: the extension experiment — strategy impact on congestion.

The paper's stated future work (Section 8): how do the three streaming
strategies affect the network loss rate?  Answer (from the shared-
bottleneck cohort runs): short cycles, whose non-ack-clocked bursts recur
every couple of seconds per session, collide at the queue far more often
than bulk transfers or the rare large bursts of long cycles.
"""

from repro.experiments import ext_loss_impact
from repro.streaming import StreamingStrategy


def test_bench_ext_loss_impact(benchmark, scale, show):
    result = benchmark.pedantic(
        lambda: ext_loss_impact.run(scale, seed=0), rounds=1, iterations=1)
    show(result.report())
    by = {r.strategy: r for r in result.rows}
    short = by[StreamingStrategy.SHORT_ONOFF]
    bulk = by[StreamingStrategy.NO_ONOFF]
    long_ = by[StreamingStrategy.LONG_ONOFF]
    # the headline: short cycles stress the queue the most
    assert short.queue_drop_rate > 1.5 * bulk.queue_drop_rate
    assert short.queue_drop_rate > 1.5 * long_.queue_drop_rate
    # and the retransmissions visible in traces follow the drops
    assert short.retransmission_share > bulk.retransmission_share
