"""Benchmark: regenerate Figure 10 (Netflix strategies)."""

from repro.experiments import fig10
from repro.streaming import StreamingStrategy

MB = 1024 * 1024


def test_bench_fig10(benchmark, scale, show):
    result = benchmark.pedantic(
        lambda: fig10.run(scale, seed=0), rounds=1, iterations=1)
    show(result.report())
    by_label = {t.label: t for t in result.traces}
    assert by_label["PC Acad."].strategy is StreamingStrategy.SHORT_ONOFF
    assert by_label["iPad Acad."].strategy is StreamingStrategy.SHORT_ONOFF
    assert by_label["Android Acad."].strategy is StreamingStrategy.LONG_ONOFF
    # PCs and the iPad use many connections; Android does not
    assert by_label["PC Acad."].connections > 10
    assert by_label["Android Acad."].connections <= 7
