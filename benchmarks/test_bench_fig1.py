"""Benchmark: regenerate Figure 1 (the download-phases schematic)."""

import pytest

from repro.experiments import fig1

KB = 1024


def test_bench_fig1(benchmark, scale, show):
    result = benchmark.pedantic(
        lambda: fig1.run(scale, seed=0), rounds=1, iterations=1)
    show(result.report())
    # the schematic's structure: a fast buffering phase, then a paced
    # steady state whose slope is the accumulation ratio times the rate
    assert result.buffering_slope_bps > 5 * result.steady_slope_bps
    assert result.steady_slope_bps == pytest.approx(
        1.25 * result.encoding_rate_bps, rel=0.1)
    assert result.block_bytes == pytest.approx(64 * KB, rel=0.1)
    assert result.off_duration_s > result.on_duration_s
