"""Benchmark: regenerate Figure 4 (Flash steady state)."""

import pytest

from repro.analysis import median
from repro.experiments import fig4

KB = 1024


def test_bench_fig4(benchmark, scale, show):
    result = benchmark.pedantic(
        lambda: fig4.run(scale, seed=0), rounds=1, iterations=1)
    show(result.report())
    for net in result.networks:
        # 64 kB dominates in every network
        assert median(net.block_sizes) == pytest.approx(64 * KB, rel=0.1), net.network
        # accumulation ratio ~1.25 in every network
        assert median(net.accumulation_ratios) == pytest.approx(1.25, rel=0.15), net.network
