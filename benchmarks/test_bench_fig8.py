"""Benchmark: regenerate Figure 8 (no ON-OFF cycles)."""

from repro.experiments import fig8


def test_bench_fig8(benchmark, scale, show):
    result = benchmark.pedantic(
        lambda: fig8.run(scale, seed=0), rounds=1, iterations=1)
    show(result.report())
    # download rate is bandwidth-bound, uncorrelated with the encoding rate
    assert abs(result.rate_correlation) < 0.6
    for point in result.points:
        assert point.download_rate_bps > 2 * point.encoding_rate_bps
    # even >1200 s videos show no steady state
    assert (result.long_videos_without_steady_state
            == result.long_videos_checked)
