#!/usr/bin/env python
"""Docs CI: keep the documentation true.

Four checks, each importable by the test suite and runnable standalone:

1. **Doctests in markdown** — every ```` ```python ```` fence containing
   ``>>>`` prompts in the repo's markdown files is executed as a doctest.
   Documentation examples that stop working fail the build.
2. **Link check** — every relative markdown link must point at a file
   that exists; fragment links (``#section``) must match a heading in
   the target file (GitHub slug rules).  External links are not fetched.
3. **Docstring audit** — every symbol exported via ``__all__`` from the
   public packages (see ``gen_api_docs.PUBLIC_MODULES``) must have a
   docstring.
4. **API freshness** — ``docs/API.md`` must match what
   ``tools/gen_api_docs.py`` would generate right now.

Usage::

    PYTHONPATH=src python tools/docs_ci.py           # run everything
    PYTHONPATH=src python tools/docs_ci.py --list    # show the files covered
"""

from __future__ import annotations

import argparse
import doctest
import inspect
import importlib
import re
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

sys.path.insert(0, str(Path(__file__).resolve().parent))
import gen_api_docs  # noqa: E402  (sibling tool, shared module list)

ROOT = Path(__file__).resolve().parent.parent

#: Markdown files under docs CI.  ISSUE/ROADMAP/PAPERS are working notes
#: for the growth process, not user documentation.
EXCLUDED = {"ISSUE.md", "ROADMAP.md", "PAPERS.md", "SNIPPETS.md", "PAPER.md"}

_FENCE = re.compile(r"```python[^\n]*\n(.*?)```", re.S)
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.M)


def markdown_files() -> List[Path]:
    """Markdown files covered by docs CI, repo root plus ``docs/``."""
    files = sorted(ROOT.glob("*.md")) + sorted((ROOT / "docs").glob("*.md"))
    return [p for p in files if p.name not in EXCLUDED]


# -- 1. doctests embedded in markdown ----------------------------------------

def iter_doctest_blocks(path: Path) -> Iterator[Tuple[int, str]]:
    """``(block_index, source)`` for python fences with ``>>>`` prompts."""
    text = path.read_text()
    for i, block in enumerate(_FENCE.findall(text)):
        if ">>>" in block:
            yield i, block


def check_markdown_doctests() -> List[str]:
    """Run every markdown doctest block; return failure descriptions."""
    failures: List[str] = []
    parser = doctest.DocTestParser()
    for path in markdown_files():
        for index, source in iter_doctest_blocks(path):
            name = f"{path.relative_to(ROOT)}[block {index}]"
            test = parser.get_doctest(source, {}, name, str(path), 0)
            runner = doctest.DocTestRunner(verbose=False)
            out: List[str] = []
            result = runner.run(test, out=out.append)
            if result.failed:
                failures.append(f"{name}: {result.failed} of "
                                f"{result.attempted} examples failed\n"
                                + "".join(out))
    return failures


# -- 2. relative links --------------------------------------------------------

def _slugify(heading: str) -> str:
    """GitHub-style anchor slug for a markdown heading."""
    heading = re.sub(r"[`*_]", "", heading.strip().lower())
    heading = re.sub(r"[^\w\- ]", "", heading)
    return heading.replace(" ", "-")


def _anchors(path: Path) -> set:
    return {_slugify(h) for h in _HEADING.findall(path.read_text())}


def check_links() -> List[str]:
    """Validate relative links (and their fragments) in markdown files."""
    failures: List[str] = []
    for path in markdown_files():
        for target in _LINK.findall(path.read_text()):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            base, _, fragment = target.partition("#")
            dest = (path.parent / base).resolve() if base else path
            if not dest.exists():
                failures.append(f"{path.relative_to(ROOT)}: broken link "
                                f"-> {target}")
                continue
            if fragment and dest.suffix == ".md" \
                    and fragment not in _anchors(dest):
                failures.append(f"{path.relative_to(ROOT)}: missing anchor "
                                f"-> {target}")
    return failures


# -- 3. docstring audit -------------------------------------------------------

def check_docstrings() -> List[str]:
    """Every ``__all__`` export of the public packages needs a docstring."""
    failures: List[str] = []
    for module_name in gen_api_docs.PUBLIC_MODULES:
        module = importlib.import_module(module_name)
        for name, obj in gen_api_docs.iter_exports(module):
            if not (inspect.isclass(obj) or inspect.isroutine(obj)
                    or inspect.ismodule(obj)):
                continue  # constants/instances document via their type
            if not inspect.getdoc(obj):
                failures.append(f"{module_name}.{name}: missing docstring")
    return failures


# -- 4. generated API reference -----------------------------------------------

def check_api_freshness() -> List[str]:
    """``docs/API.md`` must match a fresh generation."""
    target = ROOT / "docs" / "API.md"
    if not target.exists():
        return ["docs/API.md does not exist — run tools/gen_api_docs.py"]
    if target.read_text() != gen_api_docs.generate():
        return ["docs/API.md is stale — rerun "
                "`PYTHONPATH=src python tools/gen_api_docs.py`"]
    return []


CHECKS = [
    ("markdown doctests", check_markdown_doctests),
    ("links", check_links),
    ("docstrings", check_docstrings),
    ("API freshness", check_api_freshness),
]


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--list", action="store_true",
                    help="print the markdown files under docs CI and exit")
    args = ap.parse_args(argv)
    if args.list:
        for path in markdown_files():
            print(path.relative_to(ROOT))
        return 0

    status = 0
    for label, check in CHECKS:
        failures = check()
        if failures:
            status = 1
            print(f"FAIL {label}:", file=sys.stderr)
            for failure in failures:
                print(f"  {failure}", file=sys.stderr)
        else:
            print(f"ok   {label}")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
