#!/usr/bin/env python
"""Generate ``docs/API.md`` from the package's docstrings.

The public surface of ``repro`` is whatever its packages export in
``__all__``; this script walks that surface and renders one reference
section per package — module overview (first paragraph of the module
docstring), then one entry per exported symbol with its signature and
the first paragraph of its docstring.  Documentation lives *in the
code*; this file turns it into a browsable page and the docs CI job
(``tools/docs_ci.py``) fails the build when an export has no docstring
or the generated page has drifted from the source.

Usage::

    PYTHONPATH=src python tools/gen_api_docs.py            # rewrite docs/API.md
    PYTHONPATH=src python tools/gen_api_docs.py --check    # exit 1 on drift
"""

from __future__ import annotations

import argparse
import importlib
import inspect
import re
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

#: The packages whose ``__all__`` constitutes the public API, bottom-up
#: (the same order as the architecture layering).
PUBLIC_MODULES = [
    "repro.simnet",
    "repro.tcp",
    "repro.pcap",
    "repro.http",
    "repro.workloads",
    "repro.streaming",
    "repro.analysis",
    "repro.stats",
    "repro.model",
    "repro.runner",
    "repro.experiments",
    "repro.telemetry",
    "repro.obs",
]

HEADER = """\
# API reference

*Generated from docstrings by `tools/gen_api_docs.py` — do not edit by
hand.  Regenerate with `PYTHONPATH=src python tools/gen_api_docs.py`;
the docs CI job fails when this file drifts from the source.*

The public surface of `repro` is what its packages export in
`__all__`.  Packages are listed bottom-up, matching the layer diagram
in [ARCHITECTURE.md](ARCHITECTURE.md).  Anything not listed here is
internal and may change without notice.
"""


def first_paragraph(doc: str) -> str:
    """The docstring's first paragraph, joined onto single lines."""
    doc = inspect.cleandoc(doc)
    para = doc.split("\n\n", 1)[0]
    return " ".join(line.strip() for line in para.splitlines())


def iter_exports(module) -> Iterator[Tuple[str, object]]:
    """Yield ``(name, object)`` for every name in ``module.__all__``."""
    for name in getattr(module, "__all__", ()):
        yield name, getattr(module, name)


def describe_export(name: str, obj: object) -> Tuple[str, str]:
    """``(signature-ish title, summary)`` for one exported object."""
    if inspect.isclass(obj):
        kind = "exception" if issubclass(obj, BaseException) else "class"
        title = f"{kind} `{name}`"
        doc = inspect.getdoc(obj) or ""
    elif inspect.isroutine(obj):
        try:
            sig = str(inspect.signature(obj))
        except (TypeError, ValueError):
            sig = "(...)"
        # default-value reprs can embed memory addresses, which would make
        # the generated page differ run to run; strip them
        sig = re.sub(r" at 0x[0-9a-fA-F]+", "", sig)
        title = f"`{name}{sig}`"
        doc = inspect.getdoc(obj) or ""
    elif inspect.ismodule(obj):
        title = f"module `{name}`"
        doc = inspect.getdoc(obj) or ""
    else:
        # constants and ready-made instances (profiles, scales, policies):
        # typed by their class; described by an adjacent docstring only if
        # the class carries one.
        title = f"`{name}` — `{type(obj).__name__}` instance"
        doc = ""
    summary = first_paragraph(doc) if doc else ""
    return title, summary


def render_module(dotted: str) -> List[str]:
    module = importlib.import_module(dotted)
    lines = [f"## `{dotted}`", ""]
    doc = inspect.getdoc(module)
    if doc:
        lines += [first_paragraph(doc), ""]
    exports = list(iter_exports(module))
    if not exports:
        lines += ["*(no public exports)*", ""]
        return lines
    for name, obj in exports:
        title, summary = describe_export(name, obj)
        lines.append(f"- **{title}**" + (f" — {summary}" if summary else ""))
    lines.append("")
    return lines


def generate() -> str:
    """The full markdown document as a string."""
    lines = [HEADER]
    for dotted in PUBLIC_MODULES:
        lines += render_module(dotted)
    return "\n".join(lines).rstrip() + "\n"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--check", action="store_true",
                        help="verify docs/API.md is current; do not write")
    parser.add_argument("--output", default=None,
                        help="target file (default: docs/API.md next to src)")
    args = parser.parse_args(argv)
    root = Path(__file__).resolve().parent.parent
    target = Path(args.output) if args.output else root / "docs" / "API.md"
    content = generate()
    if args.check:
        current = target.read_text() if target.exists() else ""
        if current != content:
            print(f"{target} is stale; regenerate with "
                  f"`PYTHONPATH=src python tools/gen_api_docs.py`",
                  file=sys.stderr)
            return 1
        print(f"{target} is up to date")
        return 0
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(content)
    print(f"wrote {target} ({len(content.splitlines())} lines)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
