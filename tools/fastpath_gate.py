#!/usr/bin/env python
"""The CI fast-path gate: long-ON/OFF A/B, byte-identical and >= 2x.

Runs the gate workload (a receive-window-throttled 2 Mbps stream on the
clean 100 Mbps Research profile, the paper's long ON/OFF cycle shape)
with every analytic fast-path layer on, then off — fast-forward,
vectorized train dispatch, and delivery batching together — and fails
unless

* the two legs export **byte-identical** results (MD5 over packet
  records, flow records, metric samples and QoE), and
* the all-on leg is at least ``--min-speedup`` (default 2x) faster.

Legs are interleaved and the minimum wall time per leg is compared, so
one noisy-neighbour incident on a shared runner cannot produce a bogus
pass or fail.  The toggles are flipped in-process (the same module
switches the equivalence suite uses), so both legs share one import and
one warmed-up interpreter.

Usage::

    PYTHONPATH=src python tools/fastpath_gate.py [--rounds 3]
                                                 [--min-speedup 2.0]
"""

from __future__ import annotations

import argparse
import hashlib
import sys
import time


def run_leg(fast: bool):
    """One gate-workload session with the fast-path stack on or off."""
    import repro.simnet.link as link_mod
    import repro.simnet.scheduler as sched_mod
    from repro.obs.flows import flow_records
    from repro.obs.metrics import metric_samples
    from repro.simnet.profiles import RESEARCH
    from repro.streaming import Application, Service
    from repro.streaming.session import SessionConfig, run_session
    from repro.workloads import MBPS, Video

    old = (sched_mod.FAST_FORWARD, link_mod.VECTOR_TRAINS,
           link_mod.BATCH_DELIVERIES)
    sched_mod.FAST_FORWARD = fast
    link_mod.VECTOR_TRAINS = fast
    link_mod.BATCH_DELIVERIES = fast
    try:
        video = Video(video_id="gate", duration=900.0,
                      encoding_rate_bps=2 * MBPS,
                      resolution="360p", container="flv")
        config = SessionConfig(profile=RESEARCH, service=Service.YOUTUBE,
                               application=Application.FIREFOX,
                               capture_duration=180.0, seed=7)
        started = time.perf_counter()
        result = run_session(video, config)
        wall = time.perf_counter() - started
    finally:
        (sched_mod.FAST_FORWARD, link_mod.VECTOR_TRAINS,
         link_mod.BATCH_DELIVERIES) = old

    records = [
        (r.timestamp, r.src_ip, r.src_port, r.dst_ip, r.dst_port, r.seq,
         r.ack, r.flags, r.payload_len, r.window, r.wire_len, r.payload)
        for r in result.records
    ]
    exports = (records, result.downloaded, result.stall_events,
               result.playback_position_s, result.connections_opened,
               flow_records(result, "s"), metric_samples(result, "s"))
    digest = hashlib.md5(repr(exports).encode("utf-8")).hexdigest()
    return wall, digest, len(result.capture), result.downloaded


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rounds", type=int, default=3,
                        help="interleaved rounds per leg (default 3)")
    parser.add_argument("--min-speedup", type=float, default=2.0,
                        help="required min(off)/min(on) ratio (default 2.0)")
    args = parser.parse_args(argv)

    fast_walls, slow_walls = [], []
    digests = set()
    for i in range(args.rounds):
        for fast, walls in ((True, fast_walls), (False, slow_walls)):
            wall, digest, packets, downloaded = run_leg(fast)
            walls.append(wall)
            digests.add(digest)
            leg = "fast-path on " if fast else "fast-path off"
            print(f"round {i + 1}/{args.rounds}  {leg}  {wall:7.3f}s  "
                  f"{packets} packets  {downloaded} bytes  md5 {digest[:12]}")

    if len(digests) != 1:
        print(f"FAIL: legs exported {len(digests)} distinct digests — "
              "the fast path changed results", file=sys.stderr)
        return 1

    speedup = min(slow_walls) / min(fast_walls)
    print(f"byte-identical exports; speedup {speedup:.2f}x "
          f"(min {min(fast_walls):.3f}s on vs {min(slow_walls):.3f}s off, "
          f"best of {args.rounds})")
    if speedup < args.min_speedup:
        print(f"FAIL: speedup {speedup:.2f}x < required "
              f"{args.min_speedup:.2f}x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
